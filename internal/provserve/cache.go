package provserve

import (
	"container/list"
	"sync"

	"provcompress/internal/cluster"
	"provcompress/internal/trace"
)

// answer is the cached form of one completed provenance query: the
// rendered trees, the cost stats of the cold run that produced it, and
// the invalidation tags that decide when it dies.
type answer struct {
	Trees  []string
	Hops   int
	ColdNS int64 // the cold query's cluster-side latency, nanoseconds
	// Epoch is the global event epoch at admission. Deprecated: kept only
	// for the /v1/query and /v1/stats response compatibility; invalidation
	// is keyed (Keys), not epoch-based.
	Epoch uint64
	// Keys is the sorted invalidation-key set the answer's walk touched
	// (cluster.QueryResult.InvalKeys); firing any of them evicts the
	// entry.
	Keys []uint64
	// AdmitSeq is the cache invalidation sequence snapshot taken before
	// the walk ran (Admit); Put drops the answer if any of its keys was
	// invalidated after that point.
	AdmitSeq uint64
	// TraceID names the cold run's span tree (zero when tracing is off);
	// hits replay it so a cached answer stays explorable.
	TraceID trace.TraceID
}

// Invalidation reasons, the label values of
// provd_cache_invalidations_total{reason}.
const (
	invalClass    = "class"    // an equivalence-class key fired (fresh injection)
	invalVID      = "vid"      // a VID key fired (output landing, slow insert/delete, graveyard eviction)
	invalEpoch    = "epoch"    // legacy mode: any event evicts everything
	invalInflight = "inflight" // answer raced a key firing mid-walk and was dropped at Put
	invalLRU      = "lru"      // capacity eviction
)

// depCache is a fixed-capacity LRU keyed by (scheme, output tuple, event
// ID) with dependency-indexed invalidation: every entry carries the
// invalidation-key set its walk touched, and a reverse index from key to
// entries makes firing a key evict exactly the dependents — unrelated
// entries stay hot (DESIGN.md §14).
//
// Answers computed concurrently with an invalidation are handled by an
// admission sequence: Admit snapshots the global invalidation counter
// before the walk runs, Invalidate records per key when it last fired,
// and Put drops any answer one of whose keys fired after its admission.
// Together with eager eviction under the same mutex this is airtight:
// an entry present when a key fires is removed; an answer in flight when
// it fires is dropped at Put; an answer admitted after the firing saw
// the post-invalidation cluster state and may be kept.
//
// lastInval is pruned by raising `floor` (the value assumed for keys
// missing from the map): conservative — pruning can only drop more
// in-flight answers, never serve a stale one.
type depCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	// deps indexes live entries by invalidation key.
	deps map[uint64]map[*list.Element]struct{}

	seq       uint64            // global invalidation sequence
	lastInval map[uint64]uint64 // key -> seq of its last firing
	floor     uint64            // assumed lastInval for keys absent from the map

	hits, misses, stale, evictions int64
	invalidations                  map[string]int64 // reason -> entries dropped
}

// lastInvalCap bounds the lastInval map; past it the map is cleared and
// the floor raised to the current sequence (see depCache doc).
const lastInvalCap = 1 << 16

type cacheItem struct {
	key string
	ans answer
}

func newDepCache(capacity int) *depCache {
	if capacity < 1 {
		capacity = 1
	}
	return &depCache{
		cap:           capacity,
		ll:            list.New(),
		items:         make(map[string]*list.Element, capacity),
		deps:          make(map[uint64]map[*list.Element]struct{}),
		lastInval:     make(map[uint64]uint64),
		invalidations: make(map[string]int64),
	}
}

// Admit snapshots the invalidation sequence; call it before running the
// query whose answer will be Put with this snapshot.
func (c *depCache) Admit() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// Get returns the cached answer for key, if present.
func (c *depCache) Get(key string) (answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return answer{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheItem).ans, true
}

// Put stores an answer unless one of its keys was invalidated after the
// answer's admission snapshot — that answer may reflect pre-invalidation
// cluster state and is dropped (counted as an inflight invalidation).
// An existing entry for the key is replaced.
func (c *depCache) Put(key string, ans answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range ans.Keys {
		if c.lastInvalOf(k) > ans.AdmitSeq {
			c.stale++
			c.invalidations[invalInflight]++
			return
		}
	}
	if el, ok := c.items[key]; ok {
		c.unindex(el)
		el.Value.(*cacheItem).ans = ans
		c.index(el)
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheItem{key: key, ans: ans})
	c.items[key] = el
	c.index(el)
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back(), invalLRU)
		c.evictions++
	}
}

// Invalidate fires a set of invalidation keys: it bumps the sequence,
// records the firing per key, and evicts every entry tagged with any of
// them. It returns the number of entries evicted.
func (c *depCache) Invalidate(keys []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	evicted := 0
	for _, k := range keys {
		c.lastInval[k] = c.seq
		reason := invalClass
		if cluster.IsVIDKey(k) {
			reason = invalVID
		}
		for el := range c.deps[k] {
			c.removeLocked(el, reason)
			evicted++
		}
	}
	if len(c.lastInval) > lastInvalCap {
		c.lastInval = make(map[uint64]uint64)
		c.floor = c.seq
	}
	return evicted
}

// InvalidateAll evicts every entry (the legacy epoch discipline) and
// raises the floor so every in-flight answer is dropped at Put.
func (c *depCache) InvalidateAll(reason string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	c.floor = c.seq
	c.lastInval = make(map[uint64]uint64)
	evicted := 0
	for c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back(), reason)
		evicted++
	}
	return evicted
}

// lastInvalOf returns when k last fired; keys pruned from (or never in)
// the map report the floor. Caller holds mu.
func (c *depCache) lastInvalOf(k uint64) uint64 {
	if v, ok := c.lastInval[k]; ok {
		return v
	}
	return c.floor
}

// index adds an entry to the reverse key index. Caller holds mu.
func (c *depCache) index(el *list.Element) {
	for _, k := range el.Value.(*cacheItem).ans.Keys {
		m := c.deps[k]
		if m == nil {
			m = make(map[*list.Element]struct{})
			c.deps[k] = m
		}
		m[el] = struct{}{}
	}
}

// unindex removes an entry from the reverse key index. Caller holds mu.
func (c *depCache) unindex(el *list.Element) {
	for _, k := range el.Value.(*cacheItem).ans.Keys {
		if m := c.deps[k]; m != nil {
			delete(m, el)
			if len(m) == 0 {
				delete(c.deps, k)
			}
		}
	}
}

// removeLocked drops one entry, unindexing it and counting the reason.
// Caller holds mu.
func (c *depCache) removeLocked(el *list.Element, reason string) {
	c.unindex(el)
	c.ll.Remove(el)
	delete(c.items, el.Value.(*cacheItem).key)
	c.invalidations[reason]++
}

// Len returns the number of live entries.
func (c *depCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// DepKeys returns the number of distinct invalidation keys currently
// indexing entries — the provd_cache_dep_keys gauge.
func (c *depCache) DepKeys() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deps)
}

// Stats returns the lookup counters: hits, misses, inflight stale drops,
// LRU evictions.
func (c *depCache) Stats() (hits, misses, stale, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.stale, c.evictions
}

// Invalidations snapshots the per-reason eviction counters.
func (c *depCache) Invalidations() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.invalidations))
	for r, n := range c.invalidations {
		out[r] = n
	}
	return out
}
