package provserve

import (
	"container/list"
	"sync"

	"provcompress/internal/trace"
)

// answer is the cached form of one completed provenance query: the
// rendered trees plus the cost stats of the cold run that produced it.
type answer struct {
	Trees  []string
	Hops   int
	ColdNS int64 // the cold query's cluster-side latency, nanoseconds
	Epoch  uint64
	// TraceID names the cold run's span tree (zero when tracing is off);
	// hits replay it so a cached answer stays explorable.
	TraceID trace.TraceID
}

// epochCache is a fixed-capacity LRU keyed by (scheme, output tuple,
// event ID), with epoch-based invalidation: every entry remembers the
// cache epoch that was current when its query was *admitted*, and a
// lookup only returns entries whose epoch equals the current one. Any
// accepted event bumps the epoch (via the cluster event hook), so a
// result computed before the event can never be served after it —
// including results of queries that were still in flight when the event
// arrived, because they were admitted under the older epoch.
//
// Stale entries are dropped lazily on lookup and by LRU eviction; there
// is no sweeper to race with.
type epochCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, stale, evictions int64
}

type cacheItem struct {
	key string
	ans answer
}

func newEpochCache(capacity int) *epochCache {
	if capacity < 1 {
		capacity = 1
	}
	return &epochCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached answer for key if it exists and was computed
// under the current epoch. An entry from an older epoch is removed and
// reported as a miss.
func (c *epochCache) Get(key string, epoch uint64) (answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return answer{}, false
	}
	it := el.Value.(*cacheItem)
	if it.ans.Epoch != epoch {
		c.ll.Remove(el)
		delete(c.items, key)
		c.stale++
		c.misses++
		return answer{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return it.ans, true
}

// Put stores an answer computed under the epoch recorded inside it. An
// existing entry for the key is replaced (the newer answer was admitted
// no earlier, so it is never the staler of the two in epoch terms).
func (c *epochCache) Put(key string, ans answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).ans = ans
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, ans: ans})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheItem).key)
		c.evictions++
	}
}

// Len returns the number of live entries (stale ones included until they
// are looked up or evicted).
func (c *epochCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the lookup counters: hits, misses, stale drops, evictions.
func (c *epochCache) Stats() (hits, misses, stale, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.stale, c.evictions
}
