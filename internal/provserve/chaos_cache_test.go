package provserve

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// checkedQuery serves recv(@dst,src,dst,payload) over HTTP and asserts
// the answer — cached or cold — is byte-identical to a fresh recomputation
// on the underlying cluster. Returns the response for cached-flag checks.
func checkedQuery(t *testing.T, c *cluster.Cluster, baseURL, src, dst, payload string) queryResponse {
	t.Helper()
	spec := tupleSpec{Rel: "recv", Args: []any{dst, src, dst, payload}}
	qr, resp := get(t, baseURL, spec)
	if resp.StatusCode != 200 {
		t.Fatalf("query recv(@%s,%s,%s,%s): status %d", dst, src, dst, payload, resp.StatusCode)
	}
	served := append([]string(nil), qr.Trees...)
	sort.Strings(served)
	out, err := spec.tuple()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(out, types.ZeroID, 10*time.Second)
	if err != nil {
		t.Fatalf("oracle query %v: %v", out, err)
	}
	oracle := make([]string, len(res.Trees))
	for i, tr := range res.Trees {
		oracle[i] = tr.String()
	}
	sort.Strings(oracle)
	if strings.Join(served, "\x00") != strings.Join(oracle, "\x00") {
		t.Fatalf("stale answer for recv(@%s,%s,%s,%s) (cached=%v):\nserved:\n  %s\noracle:\n  %s",
			dst, src, dst, payload, qr.Cached,
			strings.Join(served, "\n  "), strings.Join(oracle, "\n  "))
	}
	return qr
}

// TestChaosCacheInvalidation extends the chaos suite to the serving tier:
// a seeded plan of frame drops, write stalls, and one-shot connection
// resets runs under a hot cache while rounds of fresh events hit one
// equivalence class, and a node is kill-9'd and restarted mid-sequence.
// The properties:
//
//   - no stale tree survives a touched-class event — the round's inject
//     must evict the previous round's cached answer for that class, and
//     every served answer matches a fresh recomputation (the oracle);
//   - entries of untouched classes survive every round as cache hits
//     (fine-grained invalidation, not an epoch sweep);
//   - the transport's byte-class accounting stays exact under the faults.
func TestChaosCacheInvalidation(t *testing.T) {
	g := topo.Line(4, "n")
	c, err := cluster.New(cluster.Config{
		Prog:   apps.Forwarding(),
		Funcs:  apps.Funcs(),
		Nodes:  g.Nodes(),
		Scheme: "advanced",
		Faults: &cluster.FaultPlan{
			Seed:       23,
			Drop:       0.06,
			Delay:      0.04,
			DelayFor:   2 * time.Millisecond,
			ResetAfter: 8,
		},
		Transport: cluster.TransportConfig{RetryBudget: 12, BackoffMax: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Clusters: map[string]*cluster.Cluster{"advanced": c}})

	// Warm the cache: one event in the hot class (n0->n3, which rounds
	// will keep touching) and one in a cold class (n3->n0, which nothing
	// after this touches).
	er := postEvents(t, ts.URL, 30000, packetSpec("n0", "n3", "hot-0"), packetSpec("n3", "n0", "cold-0"))
	if er.Accepted != 2 || !er.Quiesced {
		t.Fatalf("warmup inject = %+v", er)
	}
	checkedQuery(t, c, ts.URL, "n0", "n3", "hot-0")
	checkedQuery(t, c, ts.URL, "n3", "n0", "cold-0")
	if qr := checkedQuery(t, c, ts.URL, "n3", "n0", "cold-0"); !qr.Cached {
		t.Fatal("cold-class re-query not served from cache")
	}

	const rounds = 6
	for r := 1; r <= rounds; r++ {
		if r == 2 || r == 4 {
			// Kill -9 a relay node and revive it; the transport's
			// retry/backoff bridges the outage, and the cache must stay
			// exact across the restart.
			c.Node("n2").Kill()
			if err := c.Restart("n2"); err != nil {
				t.Fatalf("round %d: restart n2: %v", r, err)
			}
		}
		payload := fmt.Sprintf("hot-%d", r)
		er := postEvents(t, ts.URL, 30000, packetSpec("n0", "n3", payload))
		if er.Accepted != 1 || !er.Quiesced {
			t.Fatalf("round %d inject = %+v", r, er)
		}
		// The event's class key fired: the previous round's answer for
		// this class must be gone, and the fresh answers must match the
		// oracle.
		prev := fmt.Sprintf("hot-%d", r-1)
		if qr := checkedQuery(t, c, ts.URL, "n0", "n3", prev); qr.Cached {
			t.Fatalf("round %d: stale tree for touched class served from cache (payload %s)", r, prev)
		}
		if qr := checkedQuery(t, c, ts.URL, "n0", "n3", payload); qr.Cached {
			t.Fatalf("round %d: first query of %s claims cached", r, payload)
		}
		// The untouched class rides through every round as a hit.
		if qr := checkedQuery(t, c, ts.URL, "n3", "n0", "cold-0"); !qr.Cached {
			t.Fatalf("round %d: untouched-class entry was evicted", r)
		}
	}

	if got := s.cache.Invalidations()[invalClass]; got < rounds {
		t.Fatalf("class invalidations = %d, want >= %d", got, rounds)
	}
	stats := c.TransportStats()
	if stats.BytesTotal == 0 {
		t.Fatal("no bytes accounted")
	}
	if sum := stats.BytesBase + stats.BytesProv + stats.BytesQuery + stats.BytesBatch; sum != stats.BytesTotal {
		t.Fatalf("byte-class accounting drift: base %d + prov %d + query %d + batch %d = %d, total %d",
			stats.BytesBase, stats.BytesProv, stats.BytesQuery, stats.BytesBatch, sum, stats.BytesTotal)
	}
	if stats.Retries == 0 && stats.Drops == 0 {
		t.Fatal("fault plan injected no observable faults; chaos run degenerate")
	}
}
