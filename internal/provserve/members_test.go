package provserve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/topo"
)

// newElasticCluster boots a chain cluster with replication on.
func newElasticCluster(t *testing.T, nodes, replicas int) *cluster.Cluster {
	t.Helper()
	g := topo.Line(nodes, "n")
	c, err := cluster.New(cluster.Config{
		Prog:     apps.Forwarding(),
		Funcs:    apps.Funcs(),
		Nodes:    g.Nodes(),
		Scheme:   "advanced",
		Replicas: replicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReadyzAndMembers exercises the readiness probe and the membership
// endpoint: a settled cluster is ready and lists every member Up; after a
// runtime join the view grows and the endpoint reports the handoff
// counters moving.
func TestReadyzAndMembers(t *testing.T) {
	c := newElasticCluster(t, 3, 1)
	_, ts := newTestServer(t, Config{Clusters: map[string]*cluster.Cluster{"advanced": c}})

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz on a settled cluster: %s: %s", resp.Status, body)
	}

	resp, body = get("/v1/members")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/members: %s: %s", resp.Status, body)
	}
	var members map[string]struct {
		Members []memberInfo   `json:"members"`
		Stats   map[string]any `json:"stats"`
	}
	if err := json.Unmarshal(body, &members); err != nil {
		t.Fatalf("bad members JSON: %v: %s", err, body)
	}
	adv := members["advanced"]
	if len(adv.Members) != 3 {
		t.Fatalf("members = %+v, want 3 rows", adv.Members)
	}
	for _, m := range adv.Members {
		if m.State != "up" {
			t.Fatalf("member %s state %q, want up", m.Addr, m.State)
		}
	}
	if got := adv.Stats["replicas"]; got != float64(1) {
		t.Fatalf("stats replicas = %v, want 1", got)
	}

	// Grow the cluster and watch the endpoint reflect it.
	if err := c.Join("n3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp, body = get("/v1/members")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/members after join: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &members); err != nil {
		t.Fatal(err)
	}
	adv = members["advanced"]
	if len(adv.Members) != 4 {
		t.Fatalf("after join: members = %+v, want 4 rows", adv.Members)
	}
	if got, ok := adv.Stats["handoffs"].(float64); !ok || got < 1 {
		t.Fatalf("after join: handoffs = %v, want >= 1", adv.Stats["handoffs"])
	}
	resp, body = get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after join settled: %s: %s", resp.Status, body)
	}

	// The Prometheus exposition carries the membership series.
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	for _, want := range []string{"provd_membership_handoffs_total", "provd_membership_replicas", "provd_ready"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}
