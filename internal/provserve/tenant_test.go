package provserve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"
)

// tenantGet issues a /v1/query labeled with a tenant and returns the
// response status.
func tenantGet(t *testing.T, baseURL, tenant string, spec tupleSpec) *http.Response {
	t.Helper()
	args, err := json.Marshal(spec.Args)
	if err != nil {
		t.Fatal(err)
	}
	v := url.Values{}
	v.Set("rel", spec.Rel)
	v.Set("args", string(args))
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/query?"+v.Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp
}

// TestTenantRateLimit: a tenant with a 1-token budget gets exactly its
// burst through and 429s (with Retry-After) after, while an unlimited
// neighbor — and the unlabeled default — sail through the same instant.
func TestTenantRateLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Tenants: []TenantConfig{
			// Refill so slow the bucket is effectively the 1-token burst.
			{Name: "greedy", QPS: 0.0001, Burst: 1},
			{Name: "std"},
		},
	})
	postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "t-a"))
	target := tupleSpec{Rel: "recv", Args: []any{"n2", "n0", "n2", "t-a"}}

	if resp := tenantGet(t, ts.URL, "greedy", target); resp.StatusCode != http.StatusOK {
		t.Fatalf("greedy first query: %s", resp.Status)
	}
	resp := tenantGet(t, ts.URL, "greedy", target)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("greedy second query: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The breach is the greedy tenant's alone.
	for _, tn := range []string{"std", ""} {
		if resp := tenantGet(t, ts.URL, tn, target); resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %q: %s, want 200", tn, resp.Status)
		}
	}
	gr := s.tenants["greedy"]
	if gr.rejectedRate.Load() != 1 {
		t.Fatalf("greedy rejectedRate = %d, want 1", gr.rejectedRate.Load())
	}
	if n := s.tenants["std"].rejectedRate.Load() + s.tenants[DefaultTenant].rejectedRate.Load(); n != 0 {
		t.Fatalf("neighbor rejections = %d, want 0", n)
	}
}

// TestTenantEventRateLimit: the token bucket also gates writes, one token
// per POST regardless of batch size.
func TestTenantEventRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Tenants: []TenantConfig{{Name: "writer", QPS: 0.0001, Burst: 1}},
	})
	body := `{"events":[{"rel":"packet","args":["n0","n0","n2","w-0"]},{"rel":"packet","args":["n0","n0","n2","w-1"]}]}`
	post := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/events?tenant=writer", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: %s", resp.Status)
	}
	if resp := post(); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second batch: %s, want 429", resp.Status)
	}
}

// TestTenantInflightQuota: with the worker held, a MaxInflight:1 tenant's
// second cold query is quota-rejected while a neighbor still admits.
func TestTenantInflightQuota(t *testing.T) {
	hold := make(chan struct{})
	release := make(chan struct{})
	var once bool
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Tenants: []TenantConfig{{Name: "small", MaxInflight: 1}},
		beforeQuery: func() {
			if !once {
				once = true
				close(hold)
				<-release
			}
		},
	})
	defer close(release)
	postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "q-a"))
	target := tupleSpec{Rel: "recv", Args: []any{"n2", "n0", "n2", "q-a"}}

	done := make(chan *http.Response, 1)
	go func() { done <- tenantGet(t, ts.URL, "small", target) }()
	<-hold // first query occupies the worker (and small's only slot)

	resp := tenantGet(t, ts.URL, "small", target)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second small query: %s, want 429", resp.Status)
	}
	if s.tenants["small"].rejectedQuota.Load() != 1 {
		t.Fatalf("small rejectedQuota = %d, want 1", s.tenants["small"].rejectedQuota.Load())
	}
	release <- struct{}{}
	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("held query: %s", resp.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("held query never finished")
	}
	if got := s.tenants["small"].inflight.Load(); got != 0 {
		t.Fatalf("small inflight after drain = %d, want 0", got)
	}
}

// TestTenantMetricsAndStats: the tenant label reaches /metrics and the
// /v1/stats tenants block, and unknown labels bill to default.
func TestTenantMetricsAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Tenants: []TenantConfig{{Name: "acme", QPS: 1000}},
	})
	postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "m-a"))
	target := tupleSpec{Rel: "recv", Args: []any{"n2", "n0", "n2", "m-a"}}
	if resp := tenantGet(t, ts.URL, "acme", target); resp.StatusCode != http.StatusOK {
		t.Fatalf("acme query: %s", resp.Status)
	}
	if resp := tenantGet(t, ts.URL, "nobody", target); resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown-tenant query: %s", resp.Status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body) //nolint:errcheck
	resp.Body.Close()
	for _, want := range []string{
		`provd_tenant_queries_total{tenant="acme"} 1`,
		`provd_tenant_queries_total{tenant="default"} 1`,
		`provd_tenant_rejected_total{tenant="acme",reason="rate"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Tenants["acme"].Queries != 1 {
		t.Fatalf("stats acme queries = %d, want 1", stats.Tenants["acme"].Queries)
	}
	if stats.Tenants[DefaultTenant].Events == 0 {
		t.Fatal("stats default events = 0, want the injected event")
	}
}
