package provserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/topo"
	"provcompress/internal/trace"
	"provcompress/internal/types"
	"provcompress/internal/workload"
)

// newTestCluster boots a small chain cluster with routes loaded.
func newTestCluster(t *testing.T, nodes int, scheme string) *cluster.Cluster {
	t.Helper()
	g := topo.Line(nodes, "n")
	c, err := cluster.New(cluster.Config{
		Prog:   apps.Forwarding(),
		Funcs:  apps.Funcs(),
		Nodes:  g.Nodes(),
		Scheme: scheme,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return c
}

// newTestServer stands up a daemon over an advanced-scheme cluster and an
// httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Clusters == nil {
		cfg.Clusters = map[string]*cluster.Cluster{"advanced": newTestCluster(t, 3, "advanced")}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postEvents injects packet events over HTTP and returns the response.
func postEvents(t *testing.T, baseURL string, waitMS int64, events ...tupleSpec) eventsResponse {
	t.Helper()
	body, err := json.Marshal(eventsRequest{Events: events, WaitMS: waitMS})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body) //nolint:errcheck
		t.Fatalf("inject: %s: %s", resp.Status, b)
	}
	var er eventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	return er
}

func packetSpec(src, dst, payload string) tupleSpec {
	return tupleSpec{Rel: "packet", Args: []any{src, src, dst, payload}}
}

// get issues a /v1/query and decodes the response (any status).
func get(t *testing.T, baseURL string, spec tupleSpec) (queryResponse, *http.Response) {
	t.Helper()
	args, err := json.Marshal(spec.Args)
	if err != nil {
		t.Fatal(err)
	}
	v := url.Values{}
	v.Set("rel", spec.Rel)
	v.Set("args", string(args))
	resp, err := http.Get(baseURL + "/v1/query?" + v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return qr, resp
}

// TestServeQueryCycle drives the full serve path: inject, cold query,
// cached re-query, epoch invalidation by a new event.
func TestServeQueryCycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	er := postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "p-a"))
	if er.Accepted != 1 || !er.Quiesced {
		t.Fatalf("inject = %+v", er)
	}
	target := tupleSpec{Rel: "recv", Args: []any{"n2", "n0", "n2", "p-a"}}

	cold, resp := get(t, ts.URL, target)
	if resp.StatusCode != http.StatusOK || cold.Cached || len(cold.Trees) == 0 {
		t.Fatalf("cold query = %+v (status %d)", cold, resp.StatusCode)
	}
	warm, resp := get(t, ts.URL, target)
	if resp.StatusCode != http.StatusOK || !warm.Cached {
		t.Fatalf("repeat query not cached: %+v (status %d)", warm, resp.StatusCode)
	}
	if len(warm.Trees) != len(cold.Trees) || warm.Trees[0] != cold.Trees[0] {
		t.Fatal("cached answer differs from cold answer")
	}

	// A new accepted event bumps the epoch; the cached entry must not be
	// served again.
	er2 := postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "p-b"))
	if er2.Epoch <= er.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", er.Epoch, er2.Epoch)
	}
	after, resp := get(t, ts.URL, target)
	if resp.StatusCode != http.StatusOK || after.Cached {
		t.Fatalf("query after event served stale cache: %+v (status %d)", after, resp.StatusCode)
	}
	if after.Epoch < er2.Epoch {
		t.Fatalf("recomputed answer epoch %d predates event epoch %d", after.Epoch, er2.Epoch)
	}
}

// TestQueryEventEpochRace is the required consistency hammer: queries and
// events race, and the invariant checked is that a cache-served answer is
// never from before an event whose acceptance the client had already
// observed when it issued the query.
func TestQueryEventEpochRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, QueryTimeout: 10 * time.Second})
	postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "seed"))
	target := tupleSpec{Rel: "recv", Args: []any{"n2", "n0", "n2", "seed"}}

	// floorEpoch is the newest epoch some completed event POST reported;
	// a cached answer served after that must not predate it.
	var floorEpoch atomic.Uint64
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	const queriers, queriesEach, injectors, eventsEach = 4, 40, 2, 15

	for i := 0; i < injectors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < eventsEach; k++ {
				er := postEvents(t, ts.URL, 0, packetSpec("n0", "n2", fmt.Sprintf("r%d-%d", i, k)))
				// Advance the floor to this event's epoch.
				for {
					cur := floorEpoch.Load()
					if er.Epoch <= cur || floorEpoch.CompareAndSwap(cur, er.Epoch) {
						break
					}
				}
			}
		}(i)
	}
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < queriesEach; k++ {
				floor := floorEpoch.Load()
				qr, resp := get(t, ts.URL, target)
				switch resp.StatusCode {
				case http.StatusOK:
					if qr.Cached && qr.Epoch < floor {
						errCh <- fmt.Errorf("cache served epoch %d, but an event at epoch %d was already acknowledged", qr.Epoch, floor)
						return
					}
				case http.StatusTooManyRequests:
					// Overload shedding is legal under the hammer.
				default:
					errCh <- fmt.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestOverloadAdmissionControl pins the 429 path: with one worker held
// busy and a one-slot queue, an extra query is rejected with Retry-After
// instead of queueing unboundedly, and the pool drains cleanly afterward.
func TestOverloadAdmissionControl(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:     1,
		QueueDepth:  1,
		RetryAfter:  2 * time.Second,
		beforeQuery: func() { entered <- struct{}{}; <-release },
	})
	target := tupleSpec{Rel: "recv", Args: []any{"n0", "n0", "n0", "none"}}

	type result struct {
		status int
		retry  string
	}
	results := make(chan result, 8)
	issue := func() {
		_, resp := get(t, ts.URL, target)
		results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
	}

	// First query occupies the single worker.
	go issue()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first query")
	}
	// Second query fills the one queue slot.
	go issue()
	deadline := time.Now().Add(10 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third query must be shed.
	_, resp := get(t, ts.URL, target)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", resp.Header.Get("Retry-After"))
	}

	// Release the pool: both held queries complete normally.
	close(release)
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.status != http.StatusOK {
				t.Fatalf("held query finished with status %d", r.status)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("held query never finished after release")
		}
	}
	// And shutdown drains without wedging.
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain the pool")
	}
}

// TestShutdownFailsQueuedQueries checks that a query still queued at
// Close time gets an error response instead of hanging.
func TestShutdownFailsQueuedQueries(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:     1,
		QueueDepth:  4,
		beforeQuery: func() { entered <- struct{}{}; <-release },
	})
	target := tupleSpec{Rel: "recv", Args: []any{"n0", "n0", "n0", "none"}}
	statusCh := make(chan int, 2)
	go func() { _, r := get(t, ts.URL, target); statusCh <- r.StatusCode }()
	<-entered
	go func() { _, r := get(t, ts.URL, target); statusCh <- r.StatusCode }()
	deadline := time.Now().Add(10 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release) // let the busy worker observe stop and exit
	}()
	s.Close()
	for i := 0; i < 2; i++ {
		select {
		case status := <-statusCh:
			if status != http.StatusOK && status != http.StatusServiceUnavailable && status != http.StatusBadGateway {
				t.Fatalf("query during shutdown got status %d", status)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("query stranded across shutdown")
		}
	}
}

// TestBadRequests pins the 4xx surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, url string
		status    int
	}{
		{"unknown scheme", "/v1/query?scheme=nope&rel=recv&args=[\"n0\"]", http.StatusBadRequest},
		{"bad args", "/v1/query?rel=recv&args=notjson", http.StatusBadRequest},
		{"missing rel", "/v1/query?args=[\"n0\"]", http.StatusBadRequest},
		{"float arg", `/v1/query?rel=recv&args=[1.5]`, http.StatusBadRequest},
		{"bad evid", `/v1/query?rel=recv&args=["n0"]&evid=xyz`, http.StatusBadRequest},
		{"events wrong method", "/v1/events", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	// Bad event bodies.
	for _, body := range []string{"{}", `{"events":[{"rel":"","args":[]}]}`, "not json"} {
		resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestMetricsAndStats checks both observability surfaces expose the
// serving counters.
func TestMetricsAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "m-a"))
	target := tupleSpec{Rel: "recv", Args: []any{"n2", "n0", "n2", "m-a"}}
	get(t, ts.URL, target)
	get(t, ts.URL, target)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body) //nolint:errcheck
	resp.Body.Close()
	exposition := string(body)
	for _, want := range []string{
		"provd_events_total 1",
		"provd_queries_total 2",
		"provd_cache_hits_total 1",
		"provd_cache_misses_total 1",
		"provd_query_seconds_bucket{cache=\"miss\",le=\"+Inf\"} 1",
		"provd_query_seconds_bucket{cache=\"hit\",le=\"+Inf\"} 1",
		"provd_transport_sends_total{scheme=\"advanced\"}",
		"provd_storage_bytes{scheme=\"advanced\"}",
		"provd_queue_capacity 64",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	err = json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server["queries"] != 2 || stats.Server["cache-hits"] != 1 {
		t.Fatalf("stats.Server = %v", stats.Server)
	}
	adv, ok := stats.Schemes["advanced"]
	if !ok || adv.StorageBytes <= 0 || adv.Outputs != 1 {
		t.Fatalf("stats.Schemes[advanced] = %+v (ok=%v)", adv, ok)
	}
}

// TestMultiSchemeQueryAndOutputs runs two schemes side by side: the same
// injected stream must answer under both, with independent cache keys.
func TestMultiSchemeQueryAndOutputs(t *testing.T) {
	clusters := map[string]*cluster.Cluster{
		"advanced": newTestCluster(t, 3, "advanced"),
		"exspan":   newTestCluster(t, 3, "exspan"),
	}
	_, ts := newTestServer(t, Config{Clusters: clusters})
	payload := workload.Payload(7, 16)
	postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", payload))

	for _, scheme := range []string{"advanced", "exspan"} {
		args, _ := json.Marshal([]any{"n2", "n0", "n2", payload}) //nolint:errcheck
		u := ts.URL + "/v1/query?" + url.Values{
			"rel": {"recv"}, "args": {string(args)}, "scheme": {scheme},
		}.Encode()
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		var qr queryResponse
		err = json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s query: status %d err %v", scheme, resp.StatusCode, err)
		}
		if qr.Cached || len(qr.Trees) == 0 {
			t.Fatalf("%s query = %+v; want cold answer with trees (independent cache keys)", scheme, qr)
		}
	}

	// Outputs endpoint returns the recv tuple in wire form.
	oresp, err := http.Get(ts.URL + "/v1/outputs?scheme=advanced")
	if err != nil {
		t.Fatal(err)
	}
	var outs struct {
		Outputs []tupleSpec `json:"outputs"`
	}
	err = json.NewDecoder(oresp.Body).Decode(&outs)
	oresp.Body.Close()
	if err != nil || len(outs.Outputs) != 1 || outs.Outputs[0].Rel != "recv" {
		t.Fatalf("outputs = %+v (err %v)", outs, err)
	}
	// Round-trip: the listed output parses back into a queryable tuple.
	tup, err := outs.Outputs[0].tuple()
	if err != nil {
		t.Fatal(err)
	}
	if tup.Loc() != types.NodeAddr("n2") {
		t.Fatalf("round-tripped output at %s, want n2", tup.Loc())
	}
}

// TestTraceEndpoint drives the serving layer's trace surface end to end:
// a traced daemon returns a trace_id on /v1/query, serves that trace as
// valid parent-linked Chrome JSON on /v1/trace/{id}, replays the ID on
// cache hits, exposes per-class byte counters on /metrics that sum to
// the transport byte total, and 404s unknown IDs.
func TestTraceEndpoint(t *testing.T) {
	tr := trace.NewCollector(0)
	g := topo.Line(4, "n")
	c, err := cluster.New(cluster.Config{
		Prog:   apps.Forwarding(),
		Funcs:  apps.Funcs(),
		Nodes:  g.Nodes(),
		Scheme: "advanced",
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Clusters: map[string]*cluster.Cluster{"advanced": c},
		Tracer:   tr,
	})

	postEvents(t, ts.URL, 10000, packetSpec("n0", "n3", "traced"))
	qr, resp := get(t, ts.URL, tupleSpec{Rel: "recv", Args: []any{"n3", "n0", "n3", "traced"}})
	if resp.StatusCode != http.StatusOK || len(qr.Trees) == 0 {
		t.Fatalf("query: status %d, %d trees", resp.StatusCode, len(qr.Trees))
	}
	if qr.TraceID == "" {
		t.Fatal("traced query returned no trace_id")
	}

	// The cache hit must replay the cold run's trace ID.
	hit, _ := get(t, ts.URL, tupleSpec{Rel: "recv", Args: []any{"n3", "n0", "n3", "traced"}})
	if !hit.Cached || hit.TraceID != qr.TraceID {
		t.Fatalf("cache hit: cached=%v trace_id=%q, want cold run's %q", hit.Cached, hit.TraceID, qr.TraceID)
	}

	// /v1/trace/{id} serves the span tree as valid Chrome trace JSON.
	tresp, err := http.Get(ts.URL + "/v1/trace/" + qr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tresp.Body) //nolint:errcheck
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %s: %s", tresp.Status, body)
	}
	n, err := trace.ValidateChrome(body)
	if err != nil {
		t.Fatalf("trace export invalid: %v", err)
	}
	id, err := strconv.ParseUint(qr.TraceID, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Trace(trace.TraceID(id))
	if n != len(spans) {
		t.Fatalf("chrome export has %d events, collector has %d spans", n, len(spans))
	}
	if err := trace.CheckLinked(spans); err != nil {
		t.Fatalf("served trace not parent-linked: %v", err)
	}

	// The ID listing must include the trace we just fetched.
	lresp, err := http.Get(ts.URL + "/v1/trace/")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces []string `json:"traces"`
	}
	err = json.NewDecoder(lresp.Body).Decode(&listing)
	lresp.Body.Close()
	if err != nil || lresp.StatusCode != http.StatusOK {
		t.Fatalf("trace listing: status %d err %v", lresp.StatusCode, err)
	}
	found := false
	for _, tid := range listing.Traces {
		if tid == qr.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace listing %v missing %s", listing.Traces, qr.TraceID)
	}

	// Unknown and malformed IDs answer 404/400, not 200.
	for path, want := range map[string]int{
		"/v1/trace/ffffffffffffffff": http.StatusNotFound,
		"/v1/trace/nothex":           http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	// /metrics: the per-class byte counters must sum to the aggregate
	// transport byte total, and the trace gauges must be live.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body) //nolint:errcheck
	mresp.Body.Close()
	exposition := string(mbody)
	classSum := 0.0
	for _, class := range []string{"base", "prov", "query", "batch"} {
		v, ok := promSample(exposition, "provd_bytes_total", fmt.Sprintf(`{scheme="advanced",class=%q}`, class))
		if !ok {
			t.Fatalf("/metrics missing provd_bytes_total class %q:\n%s", class, exposition)
		}
		classSum += v
	}
	if total := float64(c.TransportStats().BytesTotal); classSum != total {
		t.Fatalf("/metrics class sum %g != transport total %g", classSum, total)
	}
	if v, ok := promSample(exposition, "provd_trace_spans", ""); !ok || v <= 0 {
		t.Fatalf("/metrics provd_trace_spans = %g (ok=%v), want > 0", v, ok)
	}
	if _, ok := promSample(exposition, "provd_graveyard_tuples", `{scheme="advanced"}`); !ok {
		t.Fatal("/metrics missing provd_graveyard_tuples")
	}
}

// TestTraceEndpointDisabled pins the untraced daemon's behavior: 404 on
// /v1/trace/, no trace_id in query responses.
func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postEvents(t, ts.URL, 10000, packetSpec("n0", "n2", "plain"))
	qr, _ := get(t, ts.URL, tupleSpec{Rel: "recv", Args: []any{"n2", "n0", "n2", "plain"}})
	if qr.TraceID != "" {
		t.Fatalf("untraced daemon returned trace_id %q", qr.TraceID)
	}
	resp, err := http.Get(ts.URL + "/v1/trace/0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint on untraced daemon: status %d, want 404", resp.StatusCode)
	}
}

// promSample scans an exposition for one sample line with the exact
// label set (pass "" for unlabeled) and returns its value.
func promSample(exposition, name, labels string) (float64, bool) {
	prefix := name + labels + " "
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, prefix), "%g", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
