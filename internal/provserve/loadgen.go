package provserve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/metrics"
	"provcompress/internal/workload"
)

// LoadConfig drives RunLoad against a running provd.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8463".
	BaseURL string
	// Scheme selects the provenance scheme to query (empty = daemon default).
	Scheme string
	// Requests is the total number of queries to issue.
	Requests int
	// Concurrency is the number of parallel client workers (default 4).
	Concurrency int
	// Alpha is the Zipf exponent for output popularity (default 0.9, the
	// paper-style DNS skew); hotter skew means more cache hits.
	Alpha float64
	// Seed keys the Zipf sampler.
	Seed int64
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
}

// LoadReport is what the generator measured. A quantile that landed in
// the histogram's +Inf overflow bucket is reported with its Over flag
// set and the duration zeroed: the true value is unknown beyond "past
// the last bucket bound" (TailBound), and pretending otherwise is the
// clamping bug this struct used to have.
type LoadReport struct {
	Requests  int
	Errors    int
	Rejected  int // 429 responses (admission control sheds load)
	CacheHits int
	Elapsed   time.Duration
	QPS       float64
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	P50Over   bool
	P95Over   bool
	P99Over   bool
	TailBound time.Duration // last finite histogram bound
	Hist      *metrics.Histogram
}

// quantileDuration converts a quantile in seconds into a duration,
// reporting +Inf (overflow-bucket mass) as a flag instead of silently
// overflowing time.Duration.
func quantileDuration(q float64) (time.Duration, bool) {
	if math.IsInf(q, 1) {
		return 0, true
	}
	return time.Duration(q * float64(time.Second)), false
}

// fmtQuantile renders one quantile honestly: overflowed tails print as
// ">bound" rather than a made-up number.
func fmtQuantile(d time.Duration, over bool, tail time.Duration) string {
	if over {
		return ">" + tail.String()
	}
	return d.Round(time.Microsecond).String()
}

// String renders the report as the one-paragraph benchmark summary the
// serving layer ships with.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"%d requests in %v: %.0f qps, %d cache hits (%.0f%%), %d rejected, %d errors\n"+
			"latency p50 %s  p95 %s  p99 %s",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.QPS,
		r.CacheHits, 100*float64(r.CacheHits)/float64(max(1, r.Requests)),
		r.Rejected, r.Errors,
		fmtQuantile(r.P50, r.P50Over, r.TailBound),
		fmtQuantile(r.P95, r.P95Over, r.TailBound),
		fmtQuantile(r.P99, r.P99Over, r.TailBound))
}

// fetchOutputs asks the daemon for its output tuples (the query sampling
// frame), already in deterministic order.
func fetchOutputs(client *http.Client, baseURL, scheme string) ([]tupleSpec, error) {
	u := baseURL + "/v1/outputs"
	if scheme != "" {
		u += "?scheme=" + url.QueryEscape(scheme)
	}
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //nolint:errcheck
		return nil, fmt.Errorf("outputs: %s: %s", resp.Status, body)
	}
	var out struct {
		Outputs []tupleSpec `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Outputs, nil
}

// queryURL builds the /v1/query URL for one output tuple.
func queryURL(baseURL, scheme string, spec tupleSpec) (string, error) {
	args, err := json.Marshal(spec.Args)
	if err != nil {
		return "", err
	}
	v := url.Values{}
	v.Set("rel", spec.Rel)
	v.Set("args", string(args))
	if scheme != "" {
		v.Set("scheme", scheme)
	}
	return baseURL + "/v1/query?" + v.Encode(), nil
}

// RunLoad hammers a running daemon with provenance queries whose targets
// are sampled Zipfian from the daemon's own outputs, and reports achieved
// QPS and latency quantiles. It is the serving layer's benchmark: the
// skew makes the cache do real work, so the report shows the hit rate the
// paper's online-querying story depends on.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("provserve: load needs Requests > 0")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.9
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}
	outputs, err := fetchOutputs(client, cfg.BaseURL, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("provserve: daemon has no outputs to query (inject events first)")
	}
	urls := make([]string, len(outputs))
	for i, spec := range outputs {
		u, err := queryURL(cfg.BaseURL, cfg.Scheme, spec)
		if err != nil {
			return nil, err
		}
		urls[i] = u
	}

	// One Zipf stream feeding a work channel keeps the sample sequence
	// deterministic for a given seed regardless of worker interleaving.
	zipf := workload.NewZipf(rand.New(rand.NewSource(cfg.Seed)), len(urls), cfg.Alpha)
	work := make(chan string, cfg.Concurrency)
	hist := metrics.NewLatencyHistogram()
	var errs, rejected, hits atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				t0 := time.Now()
				resp, err := client.Get(u)
				if err != nil {
					errs.Add(1)
					continue
				}
				var qr queryResponse
				decErr := json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				case resp.StatusCode != http.StatusOK || decErr != nil:
					errs.Add(1)
				default:
					hist.ObserveDuration(time.Since(t0))
					if qr.Cached {
						hits.Add(1)
					}
				}
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		work <- urls[zipf.Next()]
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	p50, p95, p99 := hist.Summary()
	r := &LoadReport{
		Requests:  cfg.Requests,
		Errors:    int(errs.Load()),
		Rejected:  int(rejected.Load()),
		CacheHits: int(hits.Load()),
		Elapsed:   elapsed,
		QPS:       float64(cfg.Requests) / elapsed.Seconds(),
		Hist:      hist,
	}
	bounds := hist.Bounds()
	r.TailBound = time.Duration(bounds[len(bounds)-1] * float64(time.Second))
	r.P50, r.P50Over = quantileDuration(p50)
	r.P95, r.P95Over = quantileDuration(p95)
	r.P99, r.P99Over = quantileDuration(p99)
	return r, nil
}
