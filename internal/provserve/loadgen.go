package provserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/metrics"
	"provcompress/internal/workload"
)

// LoadConfig drives RunLoad against a running provd.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8463".
	BaseURL string
	// Scheme selects the provenance scheme to query (empty = daemon default).
	Scheme string
	// Requests is the total number of queries to issue.
	Requests int
	// Concurrency is the number of parallel client workers (default 4).
	Concurrency int
	// Alpha is the Zipf exponent for output popularity (default 0.9, the
	// paper-style DNS skew); hotter skew means more cache hits.
	Alpha float64
	// Seed keys the Zipf sampler.
	Seed int64
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// Tenant, when non-empty, labels every request (?tenant=) so the run
	// bills against that tenant's admission budget.
	Tenant string
}

// LoadReport is what the generator measured. A quantile that landed in
// the histogram's +Inf overflow bucket is reported with its Over flag
// set and the duration zeroed: the true value is unknown beyond "past
// the last bucket bound" (TailBound), and pretending otherwise is the
// clamping bug this struct used to have.
type LoadReport struct {
	Requests  int
	Errors    int
	Rejected  int // 429 responses (admission control sheds load)
	CacheHits int
	Elapsed   time.Duration
	QPS       float64
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	P50Over   bool
	P95Over   bool
	P99Over   bool
	TailBound time.Duration // last finite histogram bound
	Hist      *metrics.Histogram
}

// quantileDuration converts a quantile in seconds into a duration,
// reporting +Inf (overflow-bucket mass) as a flag instead of silently
// overflowing time.Duration.
func quantileDuration(q float64) (time.Duration, bool) {
	if math.IsInf(q, 1) {
		return 0, true
	}
	return time.Duration(q * float64(time.Second)), false
}

// fmtQuantile renders one quantile honestly: overflowed tails print as
// ">bound" rather than a made-up number.
func fmtQuantile(d time.Duration, over bool, tail time.Duration) string {
	if over {
		return ">" + tail.String()
	}
	return d.Round(time.Microsecond).String()
}

// String renders the report as the one-paragraph benchmark summary the
// serving layer ships with.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"%d requests in %v: %.0f qps, %d cache hits (%.0f%%), %d rejected, %d errors\n"+
			"latency p50 %s  p95 %s  p99 %s",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.QPS,
		r.CacheHits, 100*float64(r.CacheHits)/float64(max(1, r.Requests)),
		r.Rejected, r.Errors,
		fmtQuantile(r.P50, r.P50Over, r.TailBound),
		fmtQuantile(r.P95, r.P95Over, r.TailBound),
		fmtQuantile(r.P99, r.P99Over, r.TailBound))
}

// fetchOutputs asks the daemon for its output tuples (the query sampling
// frame), already in deterministic order.
func fetchOutputs(client *http.Client, baseURL, scheme string) ([]tupleSpec, error) {
	u := baseURL + "/v1/outputs"
	if scheme != "" {
		u += "?scheme=" + url.QueryEscape(scheme)
	}
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //nolint:errcheck
		return nil, fmt.Errorf("outputs: %s: %s", resp.Status, body)
	}
	var out struct {
		Outputs []tupleSpec `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Outputs, nil
}

// queryURL builds the /v1/query URL for one output tuple.
func queryURL(baseURL, scheme, tenant string, spec tupleSpec) (string, error) {
	args, err := json.Marshal(spec.Args)
	if err != nil {
		return "", err
	}
	v := url.Values{}
	v.Set("rel", spec.Rel)
	v.Set("args", string(args))
	if scheme != "" {
		v.Set("scheme", scheme)
	}
	if tenant != "" {
		v.Set("tenant", tenant)
	}
	return baseURL + "/v1/query?" + v.Encode(), nil
}

// RunLoad hammers a running daemon with provenance queries whose targets
// are sampled Zipfian from the daemon's own outputs, and reports achieved
// QPS and latency quantiles. It is the serving layer's benchmark: the
// skew makes the cache do real work, so the report shows the hit rate the
// paper's online-querying story depends on.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("provserve: load needs Requests > 0")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.9
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}
	outputs, err := fetchOutputs(client, cfg.BaseURL, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("provserve: daemon has no outputs to query (inject events first)")
	}
	urls := make([]string, len(outputs))
	for i, spec := range outputs {
		u, err := queryURL(cfg.BaseURL, cfg.Scheme, cfg.Tenant, spec)
		if err != nil {
			return nil, err
		}
		urls[i] = u
	}
	return hammer(client, cfg, urls), nil
}

// hammer is the shared query loop behind RunLoad and RunMixedLoad: Zipf
// samples over a fixed URL frame from Concurrency workers.
func hammer(client *http.Client, cfg LoadConfig, urls []string) *LoadReport {
	// One Zipf stream feeding a work channel keeps the sample sequence
	// deterministic for a given seed regardless of worker interleaving.
	zipf := workload.NewZipf(rand.New(rand.NewSource(cfg.Seed)), len(urls), cfg.Alpha)
	work := make(chan string, cfg.Concurrency)
	hist := metrics.NewLatencyHistogram()
	var errs, rejected, hits atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				t0 := time.Now()
				resp, err := client.Get(u)
				if err != nil {
					errs.Add(1)
					continue
				}
				var qr queryResponse
				decErr := json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				case resp.StatusCode != http.StatusOK || decErr != nil:
					errs.Add(1)
				default:
					hist.ObserveDuration(time.Since(t0))
					if qr.Cached {
						hits.Add(1)
					}
				}
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		work <- urls[zipf.Next()]
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	p50, p95, p99 := hist.Summary()
	r := &LoadReport{
		Requests:  cfg.Requests,
		Errors:    int(errs.Load()),
		Rejected:  int(rejected.Load()),
		CacheHits: int(hits.Load()),
		Elapsed:   elapsed,
		QPS:       float64(cfg.Requests) / elapsed.Seconds(),
		Hist:      hist,
	}
	bounds := hist.Bounds()
	r.TailBound = time.Duration(bounds[len(bounds)-1] * float64(time.Second))
	r.P50, r.P50Over = quantileDuration(p50)
	r.P95, r.P95Over = quantileDuration(p95)
	r.P99, r.P99Over = quantileDuration(p99)
	return r
}

// MixedLoadConfig drives RunMixedLoad: the read side is a LoadConfig, the
// write side is a background injector that lands one fresh packet event
// every WriteInterval for the whole run.
type MixedLoadConfig struct {
	LoadConfig
	// WriteInterval is the gap between injected writer events (default
	// 1ms — sustained writes, the regime where epoch invalidation's hit
	// rate collapses).
	WriteInterval time.Duration
	// WriteSrc/WriteDst name the packet class the writer injects into
	// (default n0 -> n1). Keep it disjoint from the hot query targets to
	// measure what fine-grained invalidation buys: keyed caching rides
	// through unrelated writes, epoch caching does not.
	WriteSrc, WriteDst string
}

// MixedLoadReport is a LoadReport plus the write side's accounting.
type MixedLoadReport struct {
	LoadReport
	Writes      int
	WriteErrors int
	// HitRate is CacheHits / Requests — the headline A/B number against
	// the epoch baseline (BENCH_serve.json "cache" records).
	HitRate float64
}

// String appends the write-side line to the read report.
func (r *MixedLoadReport) String() string {
	return fmt.Sprintf("%s\nwrites %d (%d errors), hit rate %.2f",
		r.LoadReport.String(), r.Writes, r.WriteErrors, r.HitRate)
}

// RunMixedLoad measures the cache under a mixed read/write workload: Zipf
// readers over the daemon's current outputs race a writer that keeps
// injecting fresh events into one equivalence class. The output frame is
// sampled before the writer starts, so reads target pre-existing classes
// and the writer's events are invalidation traffic, not new read targets.
func RunMixedLoad(cfg MixedLoadConfig) (*MixedLoadReport, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("provserve: mixed load needs Requests > 0")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.9
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.WriteInterval <= 0 {
		cfg.WriteInterval = time.Millisecond
	}
	if cfg.WriteSrc == "" {
		cfg.WriteSrc = "n0"
	}
	if cfg.WriteDst == "" {
		cfg.WriteDst = "n1"
	}
	client := &http.Client{Timeout: cfg.Timeout}
	outputs, err := fetchOutputs(client, cfg.BaseURL, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("provserve: daemon has no outputs to query (inject events first)")
	}
	urls := make([]string, len(outputs))
	for i, spec := range outputs {
		u, err := queryURL(cfg.BaseURL, cfg.Scheme, cfg.Tenant, spec)
		if err != nil {
			return nil, err
		}
		urls[i] = u
	}

	eventsURL := cfg.BaseURL + "/v1/events"
	ev := url.Values{}
	if cfg.Scheme != "" {
		ev.Set("scheme", cfg.Scheme)
	}
	if cfg.Tenant != "" {
		ev.Set("tenant", cfg.Tenant)
	}
	if len(ev) > 0 {
		eventsURL += "?" + ev.Encode()
	}
	stop := make(chan struct{})
	var writes, writeErrs atomic.Int64
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		tick := time.NewTicker(cfg.WriteInterval)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			body, err := json.Marshal(map[string]any{"events": []map[string]any{{
				"rel":  "packet",
				"args": []any{cfg.WriteSrc, cfg.WriteSrc, cfg.WriteDst, fmt.Sprintf("mix-w%d", i)},
			}}})
			if err != nil {
				writeErrs.Add(1)
				continue
			}
			resp, err := client.Post(eventsURL, "application/json", bytes.NewReader(body))
			if err != nil {
				writeErrs.Add(1)
				continue
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				writeErrs.Add(1)
				continue
			}
			writes.Add(1)
		}
	}()
	rep := hammer(client, cfg.LoadConfig, urls)
	close(stop)
	wwg.Wait()

	return &MixedLoadReport{
		LoadReport:  *rep,
		Writes:      int(writes.Load()),
		WriteErrors: int(writeErrs.Load()),
		HitRate:     float64(rep.CacheHits) / float64(max(1, rep.Requests)),
	}, nil
}
