// Tenant admission control: the daemon serves multiple tenants from one
// worker pool, so one tenant's burst must not starve the others. Each
// tenant gets a token-bucket rate limit (sustained QPS + burst) applied at
// request entry and an inflight quota applied at worker-pool admission;
// breaching either answers 429 with Retry-After, exactly like the global
// queue-full path. Requests name their tenant with the X-Tenant header or
// the ?tenant= parameter; unlabeled (and unknown-labeled) requests bill to
// the "default" tenant, which is unlimited unless configured otherwise.
package provserve

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the tenant that requests without a (known) tenant label
// bill to.
const DefaultTenant = "default"

// TenantConfig describes one tenant's admission budget.
type TenantConfig struct {
	// Name labels the tenant (the X-Tenant header / ?tenant= value).
	Name string
	// QPS is the sustained admitted request rate — the token bucket's
	// refill rate, spent by /v1/query and /v1/events requests alike.
	// 0 means unlimited.
	QPS float64
	// Burst is the bucket depth (default ceil(QPS), min 1): how far above
	// the sustained rate a tenant may spike before 429s start.
	Burst int
	// MaxInflight caps the tenant's concurrently admitted cold queries
	// (queued or running on the worker pool). Cache hits bypass the pool
	// and are not counted. 0 means unlimited.
	MaxInflight int
}

// tenant is the runtime state behind one TenantConfig.
type tenant struct {
	cfg TenantConfig

	// Token bucket (guarded by mu; refilled lazily on each allow).
	mu     sync.Mutex
	tokens float64
	last   time.Time

	// inflight is the tenant's cold queries currently queued or running.
	inflight atomic.Int64

	// Per-tenant serving counters (the /metrics tenant label).
	queries       atomic.Int64
	events        atomic.Int64
	rejectedRate  atomic.Int64
	rejectedQuota atomic.Int64
}

func newTenant(cfg TenantConfig) *tenant {
	if cfg.QPS > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.QPS))
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	return &tenant{cfg: cfg, tokens: float64(cfg.Burst), last: time.Now()}
}

// allow spends one token. On breach it reports how long until a token
// refills — the Retry-After hint that makes the 429 actionable.
func (t *tenant) allow(now time.Time) (bool, time.Duration) {
	if t.cfg.QPS <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tokens = math.Min(float64(t.cfg.Burst), t.tokens+now.Sub(t.last).Seconds()*t.cfg.QPS)
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	return false, time.Duration((1 - t.tokens) / t.cfg.QPS * float64(time.Second))
}

// acquire claims an inflight-quota slot; the caller must release exactly
// once on success.
func (t *tenant) acquire() bool {
	if t.cfg.MaxInflight <= 0 {
		t.inflight.Add(1)
		return true
	}
	for {
		cur := t.inflight.Load()
		if cur >= int64(t.cfg.MaxInflight) {
			return false
		}
		if t.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (t *tenant) release() { t.inflight.Add(-1) }

// tenantOf resolves the request's tenant: X-Tenant header first, then the
// ?tenant= parameter, then the default. Unknown labels bill to the default
// tenant rather than failing — quota enforcement is for configured
// tenants, not an authentication layer.
func (s *Server) tenantOf(r *http.Request) *tenant {
	name := r.Header.Get("X-Tenant")
	if name == "" {
		name = r.URL.Query().Get("tenant")
	}
	if t, ok := s.tenants[name]; ok {
		return t
	}
	return s.tenants[DefaultTenant]
}

// rejectTenant answers a tenant-limit breach: 429 with the refill time (or
// the global RetryAfter for quota breaches) as the Retry-After hint.
func (s *Server) rejectTenant(w http.ResponseWriter, t *tenant, reason string, wait time.Duration) {
	s.rejected.Add(1)
	if wait <= 0 {
		wait = s.cfg.RetryAfter
	}
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	jsonError(w, http.StatusTooManyRequests, "tenant %q over %s limit", t.cfg.Name, reason)
}
