package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := String("n1").AsString(); got != "n1" {
		t.Errorf("String(n1).AsString() = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool payload mismatch")
	}
	if Int(1).Kind() != KindInt || String("").Kind() != KindString || Bool(true).Kind() != KindBool {
		t.Error("Kind mismatch")
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if !Int(0).IsValid() {
		t.Error("Int(0) should be valid")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"AsInt on string", func() { String("x").AsInt() }},
		{"AsString on int", func() { Int(1).AsString() }},
		{"AsBool on int", func() { Int(1).AsBool() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(7).Equal(Int(7)) {
		t.Error("Int(7) != Int(7)")
	}
	if Int(7).Equal(Int(8)) {
		t.Error("Int(7) == Int(8)")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("Int(1) == Bool(true): kinds must differ")
	}
	if String("a").Equal(String("b")) {
		t.Error("String(a) == String(b)")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int // sign only
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Int(99), String("a"), -1}, // kind order: int < string
		{Bool(false), Bool(true), -1},
	}
	for _, tc := range cases {
		got := tc.a.Compare(tc.b)
		if sign(got) != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-5), "-5"},
		{String("data"), `"data"`},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Value{}, "<invalid>"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if got := String("n1").Display(); got != "n1" {
		t.Errorf("Display = %q, want n1", got)
	}
	if got := Int(3).Display(); got != "3" {
		t.Errorf("Display = %q, want 3", got)
	}
}

func TestValueEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		String(""), String("n1"), String("a longer payload with spaces"),
		Bool(true), Bool(false),
	}
	for _, v := range vals {
		enc := v.AppendEncode(nil)
		if len(enc) != v.EncodedSize() {
			t.Errorf("%v: EncodedSize = %d, actual %d", v, v.EncodedSize(), len(enc))
		}
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("%v: consumed %d of %d bytes", v, n, len(enc))
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{byte(KindInt)},            // truncated varint
		{byte(KindString), 5, 'a'}, // truncated payload
		{byte(KindBool)},           // truncated bool
		{0xFF, 0},                  // bad kind
	}
	for _, b := range bad {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(% x): expected error", b)
		}
	}
}

func TestZigzagRoundTripQuick(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntEncodeRoundTripQuick(t *testing.T) {
	f := func(v int64) bool {
		enc := Int(v).AppendEncode(nil)
		got, n, err := DecodeValue(enc)
		return err == nil && n == len(enc) && got.Equal(Int(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringEncodeRoundTripQuick(t *testing.T) {
	f := func(s string) bool {
		enc := String(s).AppendEncode(nil)
		got, n, err := DecodeValue(enc)
		return err == nil && n == len(enc) && got.Equal(String(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarint(t *testing.T) {
	for _, u := range []uint64{0, 1, 127, 128, 16383, 16384, math.MaxUint64} {
		enc := appendUvarint(nil, u)
		if len(enc) != uvarintLen(u) {
			t.Errorf("uvarintLen(%d) = %d, actual %d", u, uvarintLen(u), len(enc))
		}
		got, n := decodeUvarint(enc)
		if n != len(enc) || got != u {
			t.Errorf("uvarint round trip %d -> %d (n=%d)", u, got, n)
		}
	}
	// Truncated input.
	if _, n := decodeUvarint([]byte{0x80}); n != 0 {
		t.Errorf("truncated varint: n = %d, want 0", n)
	}
}
