package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func pkt(loc, src, dst, data string) Tuple {
	return NewTuple("packet", String(loc), String(src), String(dst), String(data))
}

func TestTupleBasics(t *testing.T) {
	tp := pkt("n1", "n1", "n3", "data")
	if tp.Rel != "packet" || tp.Arity() != 4 {
		t.Fatalf("bad tuple: %v", tp)
	}
	if tp.Loc() != "n1" {
		t.Errorf("Loc = %q, want n1", tp.Loc())
	}
	want := `packet(@n1, "n1", "n3", "data")`
	if got := tp.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTupleLocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Loc on empty tuple should panic")
		}
	}()
	Tuple{Rel: "empty"}.Loc()
}

func TestTupleEqual(t *testing.T) {
	a := pkt("n1", "n1", "n3", "data")
	b := pkt("n1", "n1", "n3", "data")
	if !a.Equal(b) {
		t.Error("identical tuples not Equal")
	}
	if a.Equal(pkt("n1", "n1", "n3", "url")) {
		t.Error("tuples with different payloads Equal")
	}
	if a.Equal(NewTuple("recv", String("n1"), String("n1"), String("n3"), String("data"))) {
		t.Error("tuples with different relations Equal")
	}
	if a.Equal(NewTuple("packet", String("n1"))) {
		t.Error("tuples with different arity Equal")
	}
}

func TestTupleClone(t *testing.T) {
	a := pkt("n1", "n1", "n3", "data")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Args[3] = String("mutated")
	if a.Args[3].AsString() != "data" {
		t.Error("mutating clone affected original")
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	tuples := []Tuple{
		pkt("n1", "n1", "n3", "data"),
		NewTuple("route", String("n2"), String("n3"), String("n3")),
		NewTuple("mixed", String("n1"), Int(-7), Bool(true), String("")),
		NewTuple("noargs"),
	}
	for _, tp := range tuples {
		enc := tp.Encode()
		if len(enc) != tp.EncodedSize() {
			t.Errorf("%v: EncodedSize %d != actual %d", tp, tp.EncodedSize(), len(enc))
		}
		got, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", tp, err)
		}
		if n != len(enc) || !got.Equal(tp) {
			t.Errorf("round trip %v -> %v (n=%d/%d)", tp, got, n, len(enc))
		}
	}
}

func TestTupleDecodeErrors(t *testing.T) {
	good := pkt("n1", "n1", "n3", "data").Encode()
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeTuple(good[:cut]); err == nil {
			// Truncation at some boundaries can still parse a shorter valid
			// prefix only if all bytes are consumed, which never happens for
			// a strict prefix of this encoding.
			t.Errorf("DecodeTuple(prefix %d): expected error", cut)
		}
	}
}

// randomTuple generates an arbitrary tuple whose first attribute is a valid
// string location, for property tests.
func randomTuple(r *rand.Rand) Tuple {
	rels := []string{"packet", "recv", "route", "request", "reply"}
	arity := 1 + r.Intn(5)
	args := make([]Value, arity)
	args[0] = String(randWord(r))
	for i := 1; i < arity; i++ {
		switch r.Intn(3) {
		case 0:
			args[i] = Int(r.Int63n(1000) - 500)
		case 1:
			args[i] = String(randWord(r))
		default:
			args[i] = Bool(r.Intn(2) == 0)
		}
	}
	return Tuple{Rel: rels[r.Intn(len(rels))], Args: args}
}

func randWord(r *rand.Rand) string {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 1 + r.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func TestTupleEncodeRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomTuple(r))
		},
	}
	f := func(tp Tuple) bool {
		enc := tp.Encode()
		got, n, err := DecodeTuple(enc)
		return err == nil && n == len(enc) && got.Equal(tp) && len(enc) == tp.EncodedSize()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
