package types

import (
	"crypto/sha1"
	"encoding/hex"
)

// ID is a 160-bit content identifier, the "sha1(...)" values of the paper's
// provenance tables. VIDs identify tuples, RIDs identify rule executions,
// and EVIDs identify input event tuples; all three are IDs computed over
// different canonical encodings.
type ID [sha1.Size]byte

// ZeroID is the invalid/absent identifier, rendered as NULL in tables.
var ZeroID ID

// IsZero reports whether the ID is the absent value (NULL in the paper).
func (id ID) IsZero() bool { return id == ZeroID }

// String returns a short hex prefix for logs and table dumps, or "NULL" for
// the zero ID.
func (id ID) String() string {
	if id.IsZero() {
		return "NULL"
	}
	return hex.EncodeToString(id[:8])
}

// Hex returns the full 40-character hex form of the ID.
func (id ID) Hex() string { return hex.EncodeToString(id[:]) }

// HashTuple computes the VID of a tuple: sha1 over its canonical encoding,
// matching the sha1(recv(@n3, n1, n3, "data")) entries of Table 1.
func HashTuple(t Tuple) ID {
	return sha1.Sum(t.Encode())
}

// HashBytes computes the ID of an arbitrary byte string.
func HashBytes(b []byte) ID { return sha1.Sum(b) }

// RuleExecID computes the RID of a rule execution from the rule name, the
// executing node, and the VIDs of the body tuples recorded for it, matching
// the sha1(r1+n1+vid1+vid2) entries of Table 1. Advanced compression calls
// it without the location (loc == "") and with only the slow-changing VIDs,
// matching the sha1(r1, vid1) entries of Table 3, so that equivalent rule
// executions at the same node collapse to one RID.
func RuleExecID(rule string, loc NodeAddr, vids []ID) ID {
	h := sha1.New()
	h.Write([]byte(rule))
	h.Write([]byte{0})
	h.Write([]byte(loc))
	h.Write([]byte{0})
	for _, v := range vids {
		h.Write(v[:])
	}
	var id ID
	h.Sum(id[:0])
	return id
}

// HashValues computes the hash of an ordered list of attribute values; the
// Advanced scheme uses it to key the htequi and hmap hash tables by the
// valuation of the equivalence keys.
func HashValues(vals []Value) ID {
	buf := make([]byte, 0, 64)
	for _, v := range vals {
		buf = v.AppendEncode(buf)
	}
	return sha1.Sum(buf)
}
