package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIDZeroAndString(t *testing.T) {
	var id ID
	if !id.IsZero() {
		t.Error("zero ID not IsZero")
	}
	if id.String() != "NULL" {
		t.Errorf("zero ID String = %q, want NULL", id.String())
	}
	h := HashTuple(pkt("n1", "n1", "n3", "data"))
	if h.IsZero() {
		t.Error("hash of a tuple is zero")
	}
	if len(h.Hex()) != 40 {
		t.Errorf("Hex length = %d, want 40", len(h.Hex()))
	}
	if len(h.String()) != 16 {
		t.Errorf("short String length = %d, want 16", len(h.String()))
	}
}

func TestHashTupleDeterministicAndDiscriminating(t *testing.T) {
	a := HashTuple(pkt("n1", "n1", "n3", "data"))
	b := HashTuple(pkt("n1", "n1", "n3", "data"))
	if a != b {
		t.Error("same tuple hashed to different IDs")
	}
	diff := []Tuple{
		pkt("n2", "n1", "n3", "data"), // location
		pkt("n1", "n1", "n3", "url"),  // payload
		NewTuple("recv", String("n1"), String("n1"), String("n3"), String("data")), // relation
	}
	for _, tp := range diff {
		if HashTuple(tp) == a {
			t.Errorf("distinct tuple %v collides", tp)
		}
	}
	// Kind matters: Int(1) vs String("1") vs Bool(true) must differ.
	x := HashTuple(NewTuple("r", String("n"), Int(1)))
	y := HashTuple(NewTuple("r", String("n"), String("1")))
	z := HashTuple(NewTuple("r", String("n"), Bool(true)))
	if x == y || y == z || x == z {
		t.Error("values of different kinds collide")
	}
}

func TestRuleExecID(t *testing.T) {
	v1 := HashTuple(NewTuple("route", String("n1"), String("n3"), String("n2")))
	v2 := HashTuple(pkt("n1", "n1", "n3", "data"))
	a := RuleExecID("r1", "n1", []ID{v1, v2})
	b := RuleExecID("r1", "n1", []ID{v1, v2})
	if a != b {
		t.Error("RuleExecID not deterministic")
	}
	if RuleExecID("r2", "n1", []ID{v1, v2}) == a {
		t.Error("rule name ignored")
	}
	if RuleExecID("r1", "n2", []ID{v1, v2}) == a {
		t.Error("location ignored")
	}
	if RuleExecID("r1", "n1", []ID{v2, v1}) == a {
		t.Error("vid order ignored")
	}
	if RuleExecID("r1", "n1", nil) == a {
		t.Error("vids ignored")
	}
	// Advanced form: no location.
	if RuleExecID("r1", "", []ID{v1}) == RuleExecID("r1", "n1", []ID{v1}) {
		t.Error("empty and non-empty location collide")
	}
}

func TestHashValues(t *testing.T) {
	a := HashValues([]Value{String("n1"), String("n3")})
	b := HashValues([]Value{String("n1"), String("n3")})
	if a != b {
		t.Error("HashValues not deterministic")
	}
	if HashValues([]Value{String("n3"), String("n1")}) == a {
		t.Error("order ignored")
	}
	if HashValues([]Value{String("n1")}) == a {
		t.Error("length ignored")
	}
}

// Property: hashing is injective on distinct random tuples with overwhelming
// probability; equal tuples always hash equal.
func TestHashTupleQuick(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomTuple(r))
			vals[1] = reflect.ValueOf(randomTuple(r))
		},
	}
	f := func(a, b Tuple) bool {
		ha, hb := HashTuple(a), HashTuple(b)
		if a.Equal(b) {
			return ha == hb
		}
		return ha != hb
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
