package types

import (
	"fmt"
	"strings"
)

// NodeAddr identifies a node in the distributed system. The paper writes
// node addresses as n1, n2, ...; we keep them as strings so topologies can
// use meaningful names ("transit0", "ns.com").
type NodeAddr string

// Tuple is an instance of a relation. By NDlog convention the first
// attribute carries the location specifier ("@" attribute): the node at
// which the tuple resides.
type Tuple struct {
	Rel  string  // relation name, e.g. "packet"
	Args []Value // attribute values; Args[0] is the location specifier
}

// NewTuple builds a tuple from a relation name and attribute values.
func NewTuple(rel string, args ...Value) Tuple {
	return Tuple{Rel: rel, Args: args}
}

// Loc returns the node address of the tuple, i.e. the value of the location
// specifier attribute. It panics if the tuple has no attributes or the first
// attribute is not a string.
func (t Tuple) Loc() NodeAddr {
	if len(t.Args) == 0 {
		panic(fmt.Sprintf("types: tuple %s has no location specifier", t.Rel))
	}
	return NodeAddr(t.Args[0].AsString())
}

// Arity returns the number of attributes.
func (t Tuple) Arity() int { return len(t.Args) }

// Equal reports whether t and u are the same relation instance.
func (t Tuple) Equal(u Tuple) bool {
	if t.Rel != u.Rel || len(t.Args) != len(u.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(u.Args[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the tuple (the attribute slice is copied).
func (t Tuple) Clone() Tuple {
	args := make([]Value, len(t.Args))
	copy(args, t.Args)
	return Tuple{Rel: t.Rel, Args: args}
}

// String renders the tuple in NDlog syntax: rel(@loc, a1, a2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.Rel)
	b.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 0 {
			b.WriteByte('@')
			b.WriteString(a.Display())
		} else {
			b.WriteString(a.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// EncodedSize returns the number of bytes AppendEncode will write for t.
func (t Tuple) EncodedSize() int {
	n := uvarintLen(uint64(len(t.Rel))) + len(t.Rel)
	n += uvarintLen(uint64(len(t.Args)))
	for _, a := range t.Args {
		n += a.EncodedSize()
	}
	return n
}

// AppendEncode appends the canonical binary encoding of the tuple to dst.
// The encoding is: relation name (length-prefixed), attribute count, then
// each attribute value.
func (t Tuple) AppendEncode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(t.Rel)))
	dst = append(dst, t.Rel...)
	dst = appendUvarint(dst, uint64(len(t.Args)))
	for _, a := range t.Args {
		dst = a.AppendEncode(dst)
	}
	return dst
}

// Encode returns the canonical binary encoding of the tuple.
func (t Tuple) Encode() []byte {
	return t.AppendEncode(make([]byte, 0, t.EncodedSize()))
}

// DecodeTuple decodes a tuple from the front of b, returning the tuple and
// the number of bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	relLen, n := decodeUvarint(b)
	if n <= 0 {
		return Tuple{}, 0, fmt.Errorf("types: decode tuple: truncated relation length")
	}
	off := n
	// Compare in uint64 before converting: a huge length must not wrap
	// into a negative int and slip past the bounds check.
	if relLen > uint64(len(b)-off) {
		return Tuple{}, 0, fmt.Errorf("types: decode tuple: truncated relation name")
	}
	rel := string(b[off : off+int(relLen)])
	off += int(relLen)
	argc, n := decodeUvarint(b[off:])
	if n <= 0 {
		return Tuple{}, 0, fmt.Errorf("types: decode tuple: truncated arity")
	}
	off += n
	// Every encoded value takes at least one byte, so an arity exceeding
	// the remaining input is corrupt; checking it first keeps untrusted
	// input from driving a huge allocation.
	if argc > uint64(len(b)-off) {
		return Tuple{}, 0, fmt.Errorf("types: decode tuple: arity %d exceeds input", argc)
	}
	args := make([]Value, 0, argc)
	for i := uint64(0); i < argc; i++ {
		v, n, err := DecodeValue(b[off:])
		if err != nil {
			return Tuple{}, 0, fmt.Errorf("types: decode tuple %s arg %d: %w", rel, i, err)
		}
		args = append(args, v)
		off += n
	}
	return Tuple{Rel: rel, Args: args}, off, nil
}
