package types

import (
	"bytes"
	"testing"
)

// FuzzDecodeTuple checks the tuple decoder never panics on arbitrary bytes
// and that successfully decoded tuples re-encode to the consumed prefix.
func FuzzDecodeTuple(f *testing.F) {
	f.Add(pkt("n1", "n1", "n3", "data").Encode())
	f.Add(NewTuple("route", String("n2"), String("n3"), String("n3")).Encode())
	f.Add(NewTuple("mixed", String("n"), Int(-1), Bool(true)).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, n, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := tp.Encode()
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n% x\nvs\n% x", re, data[:n])
		}
		if len(re) != tp.EncodedSize() {
			t.Fatalf("EncodedSize %d != %d", tp.EncodedSize(), len(re))
		}
	})
}

// FuzzDecodeValue checks the value decoder on arbitrary bytes.
func FuzzDecodeValue(f *testing.F) {
	f.Add(Int(42).AppendEncode(nil))
	f.Add(String("hello").AppendEncode(nil))
	f.Add(Bool(true).AppendEncode(nil))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeValue(data)
		if err != nil {
			return
		}
		re := v.AppendEncode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
