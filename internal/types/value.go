// Package types provides the core data representation shared by every layer
// of the system: typed attribute values, tuples (relation instances with a
// location specifier), and the SHA-1 content identifiers (VIDs, RIDs, EVIDs)
// that the provenance tables of the paper are keyed by.
//
// Everything in this package is deterministic: two tuples with the same
// relation name and attribute values always produce the same canonical
// encoding and therefore the same ID, regardless of the node or process that
// computes it. This property is what lets distributed nodes agree on
// provenance references without coordination.
package types

import (
	"fmt"
	"strconv"
)

// Kind enumerates the attribute types supported by the NDlog dialect.
type Kind uint8

// Supported value kinds.
const (
	KindInvalid Kind = iota
	KindInt          // 64-bit signed integer
	KindString       // UTF-8 string (also used for node addresses)
	KindBool         // boolean, the result type of predicate UDFs
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is an immutable typed attribute value. The zero Value is invalid;
// construct values with Int, String, or Bool.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Int returns a Value holding the integer v.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String returns a Value holding the string s.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a Value holding the boolean b.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value was constructed by one of the
// constructors (as opposed to being the zero Value).
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It panics if the value is not an int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsString returns the string payload. It panics if the value is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: AsString on %s value", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics if the value is not a bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// Equal reports whether v and w have the same kind and payload.
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders values: first by kind, then by payload. It returns a
// negative number, zero, or a positive number as v is less than, equal to,
// or greater than w.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < w.s:
			return -1
		case v.s > w.s:
			return 1
		}
		return 0
	default:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	}
}

// String renders the value in NDlog literal syntax: integers bare, strings
// quoted, booleans as true/false.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Display renders the value without quoting strings; used for locations and
// human-readable tree dumps (e.g. "n1" rather than "\"n1\"").
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// EncodedSize returns the number of bytes AppendEncode will write for v.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindInt:
		return 1 + uvarintLen(zigzag(v.i))
	case KindString:
		return 1 + uvarintLen(uint64(len(v.s))) + len(v.s)
	case KindBool:
		return 2
	default:
		return 1
	}
}

// AppendEncode appends the canonical binary encoding of v to dst and returns
// the extended slice. The encoding is self-delimiting: a kind byte followed
// by a kind-specific payload.
func (v Value) AppendEncode(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInt:
		dst = appendUvarint(dst, zigzag(v.i))
	case KindString:
		dst = appendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindBool:
		dst = append(dst, byte(v.i))
	}
	return dst
}

// DecodeValue decodes a value from the front of b, returning the value and
// the number of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("types: decode value: empty input")
	}
	k := Kind(b[0])
	switch k {
	case KindInt:
		u, n := decodeUvarint(b[1:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("types: decode int: truncated varint")
		}
		return Int(unzigzag(u)), 1 + n, nil
	case KindString:
		u, n := decodeUvarint(b[1:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("types: decode string: truncated varint")
		}
		// Compare in uint64 before converting: a huge length must not wrap
		// into a negative int and slip past the bounds check.
		if u > uint64(len(b)-1-n) {
			return Value{}, 0, fmt.Errorf("types: decode string: truncated payload")
		}
		end := 1 + n + int(u)
		return String(string(b[1+n : end])), end, nil
	case KindBool:
		if len(b) < 2 {
			return Value{}, 0, fmt.Errorf("types: decode bool: truncated")
		}
		if b[1] > 1 {
			// Only 0 and 1 are canonical; anything else would give the
			// same value a second encoding and break content hashing.
			return Value{}, 0, fmt.Errorf("types: decode bool: non-canonical payload %d", b[1])
		}
		return Bool(b[1] != 0), 2, nil
	default:
		return Value{}, 0, fmt.Errorf("types: decode value: bad kind %d", b[0])
	}
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

func appendUvarint(dst []byte, u uint64) []byte {
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// decodeUvarint decodes a canonical (minimal-length) varint. Non-minimal
// encodings are rejected so that every value has exactly one encoding —
// the property the content hashing (VIDs) relies on.
func decodeUvarint(b []byte) (uint64, int) {
	var u uint64
	var shift uint
	for i, c := range b {
		if c < 0x80 {
			if i > 9 || i == 9 && c > 1 {
				return 0, -(i + 1) // overflow
			}
			if c == 0 && i > 0 {
				return 0, -(i + 1) // non-minimal encoding
			}
			return u | uint64(c)<<shift, i + 1
		}
		u |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
