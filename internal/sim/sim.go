// Package sim provides the discrete-event scheduler underlying the
// simulated network, our stand-in for the ns-3 simulator used by the
// paper's evaluation. Virtual time is a time.Duration since simulation
// start; events fire in (time, insertion-sequence) order, which makes every
// run fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is a discrete-event executor. The zero value is ready to use.
type Scheduler struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	processed uint64
	running   bool
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*q = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// At schedules fn at the absolute virtual time t. Scheduling in the past
// panics: it would break causality of the simulation.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// step executes the earliest pending event; it reports false if none remain.
func (s *Scheduler) step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	s.enter()
	defer s.leave()
	for s.step() {
	}
}

// RunUntil executes events with firing time <= t, then advances the clock
// to exactly t. Events scheduled beyond t stay queued.
func (s *Scheduler) RunUntil(t time.Duration) {
	s.enter()
	defer s.leave()
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events for the next d of virtual time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

func (s *Scheduler) enter() {
	if s.running {
		panic("sim: Run called re-entrantly from an event handler")
	}
	s.running = true
}

func (s *Scheduler) leave() { s.running = false }
