package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
	if s.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", s.Processed())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	var s Scheduler
	var fired []time.Duration
	s.After(time.Second, func() {
		fired = append(fired, s.Now())
		s.After(time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	var count int
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", s.Pending())
	}
	s.RunFor(2 * time.Second)
	if count != 7 || s.Now() != 7*time.Second {
		t.Errorf("after RunFor: count = %d, Now = %v", count, s.Now())
	}
	// RunUntil advances the clock even with nothing to do.
	s.Run()
	s.RunUntil(time.Minute)
	if s.Now() != time.Minute {
		t.Errorf("Now = %v, want 1m", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Scheduler
	s.After(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("At in the past should panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestReentrantRunPanics(t *testing.T) {
	var s Scheduler
	var recovered bool
	s.After(time.Second, func() {
		defer func() { recovered = recover() != nil }()
		s.Run()
	})
	s.Run()
	if !recovered {
		t.Error("re-entrant Run should panic")
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var s Scheduler
		r := rand.New(rand.NewSource(seed))
		var fired []time.Duration
		for i := 0; i < 200; i++ {
			s.After(time.Duration(r.Intn(1000))*time.Millisecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		return fired
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatal("different event counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Monotone firing times.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("time went backwards: %v after %v", a[i], a[i-1])
		}
	}
}
