package netsim

import (
	"testing"
	"time"

	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

func lineNet(t *testing.T, n int) (*sim.Scheduler, *Network) {
	t.Helper()
	var s sim.Scheduler
	return &s, New(&s, topo.Line(n, "n"))
}

func TestDirectDelivery(t *testing.T) {
	s, nw := lineNet(t, 2)
	var got []Message
	var at time.Duration
	nw.SetHandler("n1", func(m Message) { got = append(got, m); at = s.Now() })
	nw.Send(Message{From: "n0", To: "n1", Kind: "tuple", Payload: "hi", Size: 1000})
	s.Run()
	if len(got) != 1 || got[0].Payload != "hi" {
		t.Fatalf("got = %v", got)
	}
	// 1000 bytes at 50 Mbps = 160us serialization + 2ms latency.
	want := 160*time.Microsecond + topo.SimpleLatency
	if at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
	if nw.TotalBytes() != 1000 || nw.TotalMessages() != 1 {
		t.Errorf("bytes = %d, msgs = %d", nw.TotalBytes(), nw.TotalMessages())
	}
}

func TestMultiHopDelivery(t *testing.T) {
	s, nw := lineNet(t, 4)
	var at time.Duration
	delivered := false
	nw.SetHandler("n3", func(m Message) { delivered = true; at = s.Now() })
	nw.Send(Message{From: "n0", To: "n3", Kind: "x", Size: 0})
	s.Run()
	if !delivered {
		t.Fatal("not delivered")
	}
	if at != 3*topo.SimpleLatency {
		t.Errorf("3-hop zero-size delivery at %v, want %v", at, 3*topo.SimpleLatency)
	}
	// Bytes counted per traversed link: 0 here, but message count is 1.
	if nw.TotalMessages() != 1 {
		t.Errorf("msgs = %d", nw.TotalMessages())
	}
	// Each intermediate link carried the message.
	if nw.LinkStats("n1", "n2").Messages != 1 {
		t.Errorf("intermediate link stats = %+v", nw.LinkStats("n1", "n2"))
	}
}

func TestPerLinkByteAccounting(t *testing.T) {
	s, nw := lineNet(t, 3)
	nw.SetHandler("n2", func(Message) {})
	nw.Send(Message{From: "n0", To: "n2", Kind: "x", Size: 500})
	s.Run()
	if got := nw.LinkStats("n0", "n1").Bytes; got != 500 {
		t.Errorf("link n0-n1 bytes = %d, want 500", got)
	}
	if got := nw.LinkStats("n1", "n2").Bytes; got != 500 {
		t.Errorf("link n1-n2 bytes = %d, want 500", got)
	}
	if nw.TotalBytes() != 1000 {
		t.Errorf("total bytes = %d, want 1000 (500 per hop)", nw.TotalBytes())
	}
}

func TestSerializationQueueing(t *testing.T) {
	// Two back-to-back messages must serialize one after the other on the
	// same directed link.
	s, nw := lineNet(t, 2)
	var times []time.Duration
	nw.SetHandler("n1", func(m Message) { times = append(times, s.Now()) })
	nw.Send(Message{From: "n0", To: "n1", Size: 62500}) // 10ms at 50Mbps
	nw.Send(Message{From: "n0", To: "n1", Size: 62500})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("deliveries = %d", len(times))
	}
	if times[1]-times[0] != 10*time.Millisecond {
		t.Errorf("spacing = %v, want 10ms serialization gap", times[1]-times[0])
	}
}

func TestFIFOOrderingPerLink(t *testing.T) {
	s, nw := lineNet(t, 2)
	var got []int
	nw.SetHandler("n1", func(m Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 10; i++ {
		nw.Send(Message{From: "n0", To: "n1", Payload: i, Size: 100})
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	s, nw := lineNet(t, 2)
	var at time.Duration
	fired := false
	nw.SetHandler("n0", func(m Message) { fired = true; at = s.Now() })
	nw.Send(Message{From: "n0", To: "n0", Size: 99999})
	s.Run()
	if !fired || at != 0 {
		t.Errorf("local delivery fired=%v at %v", fired, at)
	}
	if nw.TotalBytes() != 0 {
		t.Errorf("local messages should not consume link bytes, got %d", nw.TotalBytes())
	}
}

func TestUnknownNodePanics(t *testing.T) {
	_, nw := lineNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("send to unknown node should panic")
		}
	}()
	nw.Send(Message{From: "n0", To: "ghost"})
}

func TestUnknownHandlerCountsDropped(t *testing.T) {
	s, nw := lineNet(t, 2)
	nw.Send(Message{From: "n0", To: "n1", Size: 10})
	s.Run()
	if nw.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", nw.Dropped())
	}
}

func TestUnreachableCountsDropped(t *testing.T) {
	var s sim.Scheduler
	g := topo.Line(2, "n")
	g.AddNode("island")
	nw := New(&s, g)
	nw.SetHandler("island", func(Message) {})
	nw.Send(Message{From: "n0", To: "island", Size: 10})
	s.Run()
	if nw.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", nw.Dropped())
	}
}

func TestBroadcast(t *testing.T) {
	s, nw := lineNet(t, 5)
	got := make(map[types.NodeAddr]bool)
	for _, n := range nw.Graph().Nodes() {
		n := n
		nw.SetHandler(n, func(m Message) {
			if m.Kind != "sig" {
				t.Errorf("kind = %s", m.Kind)
			}
			got[n] = true
		})
	}
	nw.Broadcast("n2", "sig", 20, nil)
	s.Run()
	if len(got) != 5 {
		t.Errorf("broadcast reached %d of 5 nodes", len(got))
	}
}

func TestSetHandlerUnknownNodePanics(t *testing.T) {
	_, nw := lineNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("SetHandler on unknown node should panic")
		}
	}()
	nw.SetHandler("ghost", func(Message) {})
}

func TestLossInjection(t *testing.T) {
	s, nw := lineNet(t, 2)
	nw.SetLossRate(0.5, 7)
	var delivered int
	nw.SetHandler("n1", func(Message) { delivered++ })
	const sent = 200
	for i := 0; i < sent; i++ {
		nw.Send(Message{From: "n0", To: "n1", Size: 10})
	}
	s.Run()
	if delivered == 0 || delivered == sent {
		t.Fatalf("delivered = %d of %d at 50%% loss", delivered, sent)
	}
	if nw.Dropped() != int64(sent-delivered) {
		t.Errorf("dropped = %d, want %d", nw.Dropped(), sent-delivered)
	}
	// Roughly half (binomial, generous bounds).
	if delivered < sent/4 || delivered > sent*3/4 {
		t.Errorf("delivered = %d, expected near %d", delivered, sent/2)
	}
	// Local messages are never lost.
	nw.SetHandler("n0", func(Message) { delivered++ })
	before := delivered
	for i := 0; i < 10; i++ {
		nw.Send(Message{From: "n0", To: "n0", Size: 1})
	}
	s.Run()
	if delivered != before+10 {
		t.Errorf("local deliveries = %d, want %d", delivered-before, 10)
	}
	// Determinism: the same seed drops the same messages.
	s2, nw2 := lineNet(t, 2)
	nw2.SetLossRate(0.5, 7)
	var delivered2 int
	nw2.SetHandler("n1", func(Message) { delivered2++ })
	for i := 0; i < sent; i++ {
		nw2.Send(Message{From: "n0", To: "n1", Size: 10})
	}
	s2.Run()
	if delivered2 != delivered-10 { // minus the local ones counted above
		t.Errorf("loss not deterministic: %d vs %d", delivered2, delivered-10)
	}
}

func TestLossRateValidation(t *testing.T) {
	_, nw := lineNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range loss rate accepted")
		}
	}()
	nw.SetLossRate(1.5, 1)
}

func TestSerializationDelay(t *testing.T) {
	if d := serializationDelay(1_000_000, 8_000_000); d != time.Second {
		t.Errorf("1MB at 8Mbps = %v, want 1s", d)
	}
	if d := serializationDelay(100, 0); d != 0 {
		t.Errorf("zero bandwidth should mean no delay, got %v", d)
	}
}
