// Package netsim is the simulated network substrate standing in for ns-3
// in the paper's evaluation (Section 6): nodes exchange messages over the
// links of a topology, each transmission paying the link's serialization
// delay (size / bandwidth) plus its propagation latency, with per-link FIFO
// ordering. Multi-hop delivery follows precomputed shortest paths, and every
// traversed link accounts the bytes carried, which is how the bandwidth
// figures (Figures 11 and 15) are measured.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// Message is a network-layer datagram. Kind discriminates the protocol
// (tuple shipment, provenance query, sig broadcast, ...); Payload is
// interpreted by the receiving handler; Size is the on-the-wire size in
// bytes used for serialization delay and bandwidth accounting.
type Message struct {
	From, To types.NodeAddr
	Kind     string
	Payload  any
	Size     int
}

// Handler receives messages addressed to a node.
type Handler func(msg Message)

type dirKey struct {
	a, b types.NodeAddr
}

// LinkStats accumulates traffic counters for one undirected link.
type LinkStats struct {
	Bytes    int64
	Messages int64
}

// Network simulates message exchange over a topology.
type Network struct {
	sched    *sim.Scheduler
	graph    *topo.Graph
	routes   *topo.Routes
	handlers map[types.NodeAddr]Handler

	busyUntil map[dirKey]time.Duration
	linkStats map[dirKey]*LinkStats

	totalBytes int64
	totalMsgs  int64
	dropped    int64

	lossRate float64
	lossRNG  *rand.Rand
}

// New builds a network over g with shortest-path routing.
func New(sched *sim.Scheduler, g *topo.Graph) *Network {
	return &Network{
		sched:     sched,
		graph:     g,
		routes:    g.ShortestPaths(),
		handlers:  make(map[types.NodeAddr]Handler),
		busyUntil: make(map[dirKey]time.Duration),
		linkStats: make(map[dirKey]*LinkStats),
	}
}

// Scheduler returns the underlying discrete-event scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Graph returns the topology.
func (n *Network) Graph() *topo.Graph { return n.graph }

// Routes returns the shortest-path routing tables.
func (n *Network) Routes() *topo.Routes { return n.routes }

// SetHandler installs the receive handler for a node.
func (n *Network) SetHandler(addr types.NodeAddr, h Handler) {
	if !n.graph.HasNode(addr) {
		panic(fmt.Sprintf("netsim: handler for unknown node %s", addr))
	}
	n.handlers[addr] = h
}

// TotalBytes returns the bytes carried across all links so far (a message
// traversing k links is counted k times, as it occupies each link).
func (n *Network) TotalBytes() int64 { return n.totalBytes }

// TotalMessages returns the number of end-to-end messages sent.
func (n *Network) TotalMessages() int64 { return n.totalMsgs }

// Dropped returns messages abandoned for lack of a route or handler, or
// lost to injected faults.
func (n *Network) Dropped() int64 { return n.dropped }

// SetLossRate enables fault injection: each end-to-end message is dropped
// with the given probability (deterministically, from the seed). Loss is
// applied at send time — a lost message consumes no link bandwidth, like a
// payload corrupted at its first hop and discarded.
func (n *Network) SetLossRate(rate float64, seed int64) {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("netsim: loss rate %v out of [0,1]", rate))
	}
	n.lossRate = rate
	n.lossRNG = rand.New(rand.NewSource(seed))
}

// LinkStats returns the traffic counters of the undirected link a--b.
func (n *Network) LinkStats(a, b types.NodeAddr) LinkStats {
	k := linkKeyOf(a, b)
	if s := n.linkStats[k]; s != nil {
		return *s
	}
	return LinkStats{}
}

func linkKeyOf(a, b types.NodeAddr) dirKey {
	if b < a {
		a, b = b, a
	}
	return dirKey{a, b}
}

// Send routes a message from msg.From to msg.To along the shortest path,
// scheduling its delivery to the destination handler. Local messages
// (From == To) are delivered at the current time plus zero delay. Unknown
// destinations panic (a programming error); unreachable ones are counted
// as dropped.
func (n *Network) Send(msg Message) {
	if !n.graph.HasNode(msg.From) || !n.graph.HasNode(msg.To) {
		panic(fmt.Sprintf("netsim: send %s -> %s: unknown node", msg.From, msg.To))
	}
	n.totalMsgs++
	if n.lossRate > 0 && msg.From != msg.To && n.lossRNG.Float64() < n.lossRate {
		n.dropped++
		return
	}
	if msg.From == msg.To {
		n.sched.After(0, func() { n.deliver(msg) })
		return
	}
	path := n.routes.Path(msg.From, msg.To)
	if path == nil {
		n.dropped++
		return
	}
	n.hop(msg, path, 0, n.sched.Now())
}

// hop transmits the message over path[i] -> path[i+1], arriving at
// readyAt' = serialization + latency past the link becoming free.
func (n *Network) hop(msg Message, path []types.NodeAddr, i int, readyAt time.Duration) {
	u, v := path[i], path[i+1]
	link, ok := n.graph.FindLink(u, v)
	if !ok {
		// Routing produced a non-adjacent hop; cannot happen with a
		// consistent Routes table.
		panic(fmt.Sprintf("netsim: no link %s -- %s on routed path", u, v))
	}
	dk := dirKey{u, v}
	start := readyAt
	if n.busyUntil[dk] > start {
		start = n.busyUntil[dk]
	}
	tx := serializationDelay(msg.Size, link.Bandwidth)
	done := start + tx
	n.busyUntil[dk] = done
	arrive := done + link.Latency

	lk := linkKeyOf(u, v)
	st := n.linkStats[lk]
	if st == nil {
		st = &LinkStats{}
		n.linkStats[lk] = st
	}
	st.Bytes += int64(msg.Size)
	st.Messages++
	n.totalBytes += int64(msg.Size)

	n.sched.At(arrive, func() {
		if i+2 < len(path) {
			n.hop(msg, path, i+1, arrive)
			return
		}
		n.deliver(msg)
	})
}

func (n *Network) deliver(msg Message) {
	h := n.handlers[msg.To]
	if h == nil {
		n.dropped++
		return
	}
	h(msg)
}

// Broadcast sends a copy of the message to every node in the topology
// (including the sender), the primitive used for the sig control message of
// Section 5.5.
func (n *Network) Broadcast(from types.NodeAddr, kind string, size int, payload any) {
	for _, node := range n.graph.Nodes() {
		n.Send(Message{From: from, To: node, Kind: kind, Payload: payload, Size: size})
	}
}

// serializationDelay returns size bytes / bandwidth bits-per-second.
func serializationDelay(size int, bandwidthBps int64) time.Duration {
	if bandwidthBps <= 0 {
		return 0
	}
	bits := int64(size) * 8
	return time.Duration(bits * int64(time.Second) / bandwidthBps)
}
