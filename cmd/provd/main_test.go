package main

import (
	"reflect"
	"testing"

	"provcompress/internal/provserve"
)

func TestParseTenants(t *testing.T) {
	got, err := parseTenants(" acme=100:20:8, free=5 ,unlimited=")
	if err != nil {
		t.Fatal(err)
	}
	want := []provserve.TenantConfig{
		{Name: "acme", QPS: 100, Burst: 20, MaxInflight: 8},
		{Name: "free", QPS: 5},
		{Name: "unlimited"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseTenants = %+v, want %+v", got, want)
	}

	if got, err := parseTenants(""); err != nil || got != nil {
		t.Fatalf("empty spec = %+v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"noequals", "=5", "a=1:2:3:4", "a=-1", "a=x"} {
		if _, err := parseTenants(bad); err == nil {
			t.Errorf("parseTenants(%q) accepted a bad spec", bad)
		}
	}
}
