package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"syscall"
	"time"
)

// The -recover-smoke harness drives the crash-recovery path end to end
// with real processes: it re-execs this binary as a child provd with a
// temp -data-dir, injects events over HTTP, SIGKILLs the child mid-load,
// restarts it on the same directory, and asserts that the recovered
// daemon answers the same provenance queries with the same trees and that
// recovery stayed inside its time budget. A final phase terminates the
// daemon cleanly (SIGTERM → checkpoint) and asserts the next boot replays
// zero WAL records.

// recoveryBudget bounds one restart's total recovery wall time.
const recoveryBudget = 30 * time.Second

// smokeScheme is the scheme the harness exercises; one is enough — every
// scheme shares the same log/replay machinery.
const smokeScheme = "advanced"

func runRecoverSmoke(out io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "provd-recover-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Fprintf(out, "recover-smoke: data dir %s\n", dir)

	// Phase 1: boot fresh, load a quiesced batch, record its provenance.
	a, err := startSmokeChild(exe, dir)
	if err != nil {
		return err
	}
	defer a.kill()
	if err := rsPostEvents(a.base, smokeEvents(0, 16), 10000); err != nil {
		return fmt.Errorf("inject batch 1: %w", err)
	}
	outs, err := rsOutputs(a.base)
	if err != nil {
		return err
	}
	if len(outs) == 0 {
		return fmt.Errorf("no outputs after batch 1")
	}
	if len(outs) > 5 {
		outs = outs[:5]
	}
	want := make(map[string][]string, len(outs))
	for _, o := range outs {
		trees, err := rsQuery(a.base, o)
		if err != nil {
			return fmt.Errorf("pre-crash query: %w", err)
		}
		if len(trees) == 0 {
			return fmt.Errorf("pre-crash query of %s returned no trees", o.Rel)
		}
		want[rsKey(o)] = trees
	}
	fmt.Fprintf(out, "recover-smoke: recorded %d pre-crash queries\n", len(want))

	// Crash mid-load: a second burst is accepted but not quiesced when the
	// SIGKILL lands, so the logs end somewhere inside it.
	if err := rsPostEvents(a.base, smokeEvents(100, 16), 0); err != nil {
		return fmt.Errorf("inject batch 2: %w", err)
	}
	time.Sleep(30 * time.Millisecond)
	a.kill()

	// Phase 2: restart on the same dir; replay must restore batch-1 state.
	start := time.Now()
	b, err := startSmokeChild(exe, dir)
	if err != nil {
		return fmt.Errorf("restart after crash: %w", err)
	}
	defer b.kill()
	restartWall := time.Since(start)
	dur, err := rsDurability(b.base)
	if err != nil {
		return err
	}
	if dur == nil {
		return fmt.Errorf("no durability stats after crash restart")
	}
	if dur.ReplayedRecords == 0 {
		return fmt.Errorf("crash restart replayed no WAL records")
	}
	if budget := recoveryBudget.Seconds(); dur.RecoverySeconds > budget {
		return fmt.Errorf("recovery took %.2fs (budget %.0fs)", dur.RecoverySeconds, budget)
	}
	fmt.Fprintf(out, "recover-smoke: crash restart replayed %d records on %d nodes in %.3fs (boot-to-serving %.2fs)\n",
		dur.ReplayedRecords, dur.RecoveredNodes, dur.RecoverySeconds, restartWall.Seconds())
	for _, o := range outs {
		trees, err := rsQuery(b.base, o)
		if err != nil {
			return fmt.Errorf("post-crash query: %w", err)
		}
		if !equalTrees(want[rsKey(o)], trees) {
			return fmt.Errorf("post-crash provenance of %s diverged:\n  want %v\n  got  %v", rsKey(o), want[rsKey(o)], trees)
		}
	}
	fmt.Fprintf(out, "recover-smoke: post-crash provenance matches pre-crash\n")

	// Phase 3: clean shutdown checkpoints, so the next boot replays zero.
	if err := b.terminate(); err != nil {
		return fmt.Errorf("clean shutdown: %w", err)
	}
	c, err := startSmokeChild(exe, dir)
	if err != nil {
		return fmt.Errorf("restart after clean shutdown: %w", err)
	}
	defer c.kill()
	dur, err = rsDurability(c.base)
	if err != nil {
		return err
	}
	if dur == nil {
		return fmt.Errorf("no durability stats after clean restart")
	}
	if dur.ReplayedRecords != 0 {
		return fmt.Errorf("clean restart replayed %d WAL records; want 0 (final checkpoint missing?)", dur.ReplayedRecords)
	}
	for _, o := range outs {
		trees, err := rsQuery(c.base, o)
		if err != nil {
			return fmt.Errorf("post-clean-restart query: %w", err)
		}
		if !equalTrees(want[rsKey(o)], trees) {
			return fmt.Errorf("post-clean-restart provenance of %s diverged", rsKey(o))
		}
	}
	fmt.Fprintf(out, "recover-smoke: clean restart recovered from snapshot with zero replay\n")
	return nil
}

// smokeEvents builds n distinct packet events traveling the chain n0→n5.
func smokeEvents(base, n int) []rsTuple {
	evs := make([]rsTuple, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, rsTuple{Rel: "packet", Args: []any{"n0", "n0", "n5", fmt.Sprintf("pkt-%03d", base+i)}})
	}
	return evs
}

// --- child process management ----------------------------------------

type smokeChild struct {
	cmd  *exec.Cmd
	base string
	done bool
}

// startSmokeChild re-execs this binary as a durable provd on a random
// port and waits for its listening banner, then for /readyz to report
// 200 — the daemon listens before WAL replay finishes and answers 503
// until it can serve, which is precisely the window a load balancer
// (and this harness) must wait out.
func startSmokeChild(exe, dir string) (*smokeChild, error) {
	cmd := exec.Command(exe,
		"-listen", "127.0.0.1:0",
		"-schemes", smokeScheme,
		"-nodes", "6",
		"-data-dir", dir,
		"-fsync", "always",
		"-snapshot-every", "500",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "provd listening on http://") {
				fields := strings.Fields(line)
				select {
				case addrCh <- strings.TrimPrefix(fields[3], "http://"):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		base := "http://" + addr
		if err := rsWaitReady(base, recoveryBudget); err != nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
			return nil, err
		}
		return &smokeChild{cmd: cmd, base: base}, nil
	case <-time.After(recoveryBudget):
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		return nil, fmt.Errorf("child provd did not report listening within %s", recoveryBudget)
	}
}

// rsWaitReady polls /readyz until the child reports 200.
func rsWaitReady(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var last string
	for time.Now().Before(deadline) {
		resp, err := rsClient.Get(base + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		} else {
			last = err.Error()
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("child provd not ready within %s (last: %s)", budget, last)
}

// kill SIGKILLs the child — the crash. Idempotent.
func (c *smokeChild) kill() {
	if c.done {
		return
	}
	c.done = true
	c.cmd.Process.Kill() //nolint:errcheck
	c.cmd.Wait()         //nolint:errcheck
}

// terminate SIGTERMs the child — the clean shutdown — and waits for it.
func (c *smokeChild) terminate() error {
	if c.done {
		return nil
	}
	c.done = true
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waited := make(chan error, 1)
	go func() { waited <- c.cmd.Wait() }()
	select {
	case err := <-waited:
		return err
	case <-time.After(recoveryBudget):
		c.cmd.Process.Kill() //nolint:errcheck
		return fmt.Errorf("child did not exit within %s of SIGTERM", recoveryBudget)
	}
}

// --- HTTP helpers -----------------------------------------------------

var rsClient = &http.Client{Timeout: 30 * time.Second}

type rsTuple struct {
	Rel  string `json:"rel"`
	Args []any  `json:"args"`
}

func rsKey(t rsTuple) string {
	b, _ := json.Marshal(t) //nolint:errcheck
	return string(b)
}

func rsPostEvents(base string, events []rsTuple, waitMS int) error {
	body, err := json.Marshal(map[string]any{"events": events, "wait_ms": waitMS})
	if err != nil {
		return err
	}
	resp, err := rsClient.Post(base+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body) //nolint:errcheck
		return fmt.Errorf("POST /v1/events: %s: %s", resp.Status, raw)
	}
	return nil
}

func rsOutputs(base string) ([]rsTuple, error) {
	resp, err := rsClient.Get(base + "/v1/outputs?scheme=" + smokeScheme)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Outputs []rsTuple `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Outputs, nil
}

// rsQuery returns the provenance trees of one output, sorted so two
// equivalent answers compare equal regardless of walk order.
func rsQuery(base string, t rsTuple) ([]string, error) {
	args, err := json.Marshal(t.Args)
	if err != nil {
		return nil, err
	}
	u := fmt.Sprintf("%s/v1/query?scheme=%s&rel=%s&args=%s", base, smokeScheme, t.Rel, string(args))
	resp, err := rsClient.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body) //nolint:errcheck
		return nil, fmt.Errorf("GET /v1/query: %s: %s", resp.Status, raw)
	}
	var body struct {
		Trees []string `json:"trees"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	sort.Strings(body.Trees)
	return body.Trees, nil
}

type rsDurabilityStats struct {
	ReplayedRecords int64   `json:"replayed_records"`
	TornRecords     int64   `json:"torn_records"`
	RecoveredNodes  int     `json:"recovered_nodes"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	WALRecords      int64   `json:"wal_records"`
	Snapshots       int64   `json:"snapshots"`
}

func rsDurability(base string) (*rsDurabilityStats, error) {
	resp, err := rsClient.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Schemes map[string]struct {
			Durability *rsDurabilityStats `json:"durability"`
		} `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Schemes[smokeScheme].Durability, nil
}

func equalTrees(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
