// Command provd is the provenance query daemon: it boots one real-socket
// cluster per configured provenance scheme (running the -app scenario:
// packet forwarding by default, or the bgp / gossip DELPs) and serves
// distributed provenance queries over HTTP with result caching, admission
// control (optionally per tenant via -tenants), Prometheus metrics, and
// pprof.
//
// Endpoints:
//
//	POST /v1/events    inject input events (JSON; optional quiesce wait)
//	GET  /v1/query     distributed provenance query (rel, args, scheme, evid)
//	GET  /v1/outputs   list output tuples (the query sampling frame)
//	GET  /v1/stats     transport counters + storage bytes + server counters
//	GET  /v1/members   membership view + elastic counters per scheme
//	GET  /readyz       200 when serving; 503 during boot/WAL replay or
//	                   while a partition handoff is rebalancing
//	                   (use -replicas k and -join to run elastically)
//	GET  /v1/trace/ID  one distributed span tree as Chrome trace JSON
//	                   (IDs come from /v1/query trace_id; needs -trace)
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/pprof  runtime profiles
//
// Usage:
//
//	provd [-listen 127.0.0.1:8463] [-schemes advanced,basic,exspan] [-nodes 8]
//	      [-app forwarding|bgp|gossip] [-tenants name=qps[:burst[:inflight]],...] [-trace]
//
// Quickstart:
//
//	provd &
//	curl -s -XPOST localhost:8463/v1/events -d \
//	  '{"events":[{"rel":"packet","args":["n0","n0","n7","hello"]}],"wait_ms":2000}'
//	curl -s 'localhost:8463/v1/query?rel=recv&args=["n7","n0","n7","hello"]'
//	curl -s localhost:8463/metrics | grep provd_cache
//
// The -selftest flag boots the daemon on a random port, drives it over
// real HTTP (inject, cold query per scheme, cached re-query, /metrics
// scrape, Zipf load phase), prints the benchmark report, and exits
// non-zero on any violated expectation — `make serve-smoke` runs exactly
// this.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"provcompress/internal/cluster"
	"provcompress/internal/clusterboot"
	"provcompress/internal/provserve"
	"provcompress/internal/trace"
)

func main() {
	boot := clusterboot.Register(flag.CommandLine)
	listen := flag.String("listen", "127.0.0.1:8463", "HTTP listen address (use :0 for a random port)")
	schemes := flag.String("schemes", "advanced,basic,exspan", "comma-separated provenance schemes to serve")
	workers := flag.Int("workers", 8, "query worker pool size")
	queue := flag.Int("queue", 64, "pending-query queue bound (full queue answers 429)")
	cacheSize := flag.Int("cache", 1024, "result cache entries")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-attempt distributed query timeout")
	selftest := flag.Bool("selftest", false, "boot on a random port, run the HTTP smoke + load phase, and exit")
	recoverSmoke := flag.Bool("recover-smoke", false, "run the crash-recovery smoke test (spawns child provd processes on a temp -data-dir, kill -9 mid-load, asserts query equivalence) and exit")
	traced := flag.Bool("trace", false, "collect distributed spans for every event and query; serves them on /v1/trace/{id}")
	tenants := flag.String("tenants", "", "per-tenant admission limits as name=qps[:burst[:inflight]],... (e.g. acme=100:20:8,free=5); requests pick a tenant via X-Tenant or ?tenant=, unknown labels bill the default tenant")
	flag.Parse()

	names := splitSchemes(*schemes)
	if len(names) == 0 {
		log.Fatal("provd: no schemes configured")
	}
	tenantCfgs, err := parseTenants(*tenants)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	if *recoverSmoke {
		if err := runRecoverSmoke(os.Stdout); err != nil {
			log.Fatalf("provd: recover-smoke FAILED: %v", err)
		}
		fmt.Println("provd: recover-smoke ok")
		return
	}
	if *selftest {
		*listen = "127.0.0.1:0"
	}

	// One collector shared by every scheme's cluster: spans carry the
	// scheme as an attribute, so a mixed trace stays attributable.
	var tracer *trace.Collector
	if *traced {
		tracer = trace.NewCollector(0)
		boot.Tracer = tracer
	}

	// Listen before booting the clusters so /readyz answers 503 during
	// WAL replay and elastic joins instead of connection-refused; the
	// real handler is swapped in once the serving layer is up. The box
	// keeps the atomic.Value's concrete type constant across the swap.
	type handlerBox struct{ h http.Handler }
	var handler atomic.Value
	handler.Store(handlerBox{http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"booting: cluster recovery in progress"}`)
	})})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(handlerBox).h.ServeHTTP(w, r)
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Printf("provd listening on http://%s (schemes %s, %d nodes, %d workers, queue %d)\n",
		addr, strings.Join(names, ","), boot.Nodes, *workers, *queue)

	clusters := make(map[string]*cluster.Cluster, len(names))
	for _, name := range names {
		c, _, err := boot.Boot(name)
		if err != nil {
			log.Fatalf("provd: boot %s cluster: %v", name, err)
		}
		defer c.Close()
		clusters[name] = c
	}

	srv, err := provserve.New(provserve.Config{
		Clusters:      clusters,
		DefaultScheme: names[0],
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheSize:     *cacheSize,
		QueryTimeout:  *queryTimeout,
		Tracer:        tracer,
		Tenants:       tenantCfgs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	handler.Store(handlerBox{srv.Handler()})

	if *selftest {
		err := provserve.SelfTest(provserve.SelfTestConfig{
			BaseURL: "http://" + addr,
			Schemes: names,
			Nodes:   boot.Nodes,
			Out:     os.Stdout,
		})
		shutdown(httpSrv)
		if err != nil {
			log.Fatalf("provd: selftest FAILED: %v", err)
		}
		fmt.Println("provd: selftest ok")
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("provd: %v, shutting down\n", s)
		shutdown(httpSrv)
		// Clean shutdown: flush the WAL and write a final snapshot on
		// every durable cluster, so the next boot recovers instantly with
		// zero replay. No-op without -data-dir.
		for name, c := range clusters {
			if err := c.Checkpoint(); err != nil {
				log.Printf("provd: final checkpoint %s: %v", name, err)
			}
		}
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}
}

// shutdown drains the HTTP server with a bounded grace period.
func shutdown(s *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx) //nolint:errcheck
}

// splitSchemes parses the -schemes flag into trimmed lowercase names.
// parseTenants decodes the -tenants flag: a comma-separated list of
// name=qps[:burst[:inflight]] specs. qps 0 means unlimited rate; inflight
// 0 means unlimited concurrent cold queries.
func parseTenants(s string) ([]provserve.TenantConfig, error) {
	var out []provserve.TenantConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, limits, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants: bad spec %q (want name=qps[:burst[:inflight]])", part)
		}
		cfg := provserve.TenantConfig{Name: name}
		fields := strings.Split(limits, ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("-tenants: bad spec %q (too many fields)", part)
		}
		for i, f := range fields {
			if f == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("-tenants: bad spec %q: field %q", part, f)
			}
			switch i {
			case 0:
				cfg.QPS = v
			case 1:
				cfg.Burst = int(v)
			case 2:
				cfg.MaxInflight = int(v)
			}
		}
		out = append(out, cfg)
	}
	return out, nil
}

func splitSchemes(s string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		name := strings.ToLower(strings.TrimSpace(part))
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}
