// Command provquery boots a real TCP cluster (one goroutine + loopback
// listener per node, binary frames on the wire — the Section 6.1.3
// deployment style), runs the packet-forwarding application with
// equivalence-based provenance compression, and issues distributed
// provenance queries, printing the reconstructed trees.
//
// Usage:
//
//	provquery [-nodes 8] [-packets 20] [-pairs 3]
//
// Fault injection (the transport absorbs what the plan injects; -stats
// shows the dial/retry/drop counters at exit):
//
//	provquery -drop 0.05 -reset-after 20 -fault-seed 7 -stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/metrics"
	"provcompress/internal/topo"
	"provcompress/internal/types"
	"provcompress/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size (chain topology)")
	packets := flag.Int("packets", 20, "packets per pair")
	pairs := flag.Int("pairs", 3, "communicating pairs")
	scheme := flag.String("scheme", "advanced", "provenance scheme: exspan, basic, or advanced")
	drop := flag.Float64("drop", 0, "fault injection: per-attempt probability a frame write is dropped")
	delay := flag.Float64("delay", 0, "fault injection: per-attempt probability a frame write stalls")
	delayFor := flag.Duration("delay-for", 5*time.Millisecond, "fault injection: how long a stalled write waits")
	resetAfter := flag.Int("reset-after", 0, "fault injection: reset each link once after N successful writes")
	faultSeed := flag.Int64("fault-seed", 1, "fault injection: RNG seed (runs with the same seed inject the same faults)")
	stats := flag.Bool("stats", false, "print the transport counters at exit")
	flag.Parse()

	if *nodes < 2 {
		fmt.Fprintln(os.Stderr, "provquery: need at least 2 nodes")
		os.Exit(2)
	}

	// A chain of nodes with shortest-path routes.
	g := topo.Line(*nodes, "n")
	routes := g.ShortestPaths().RouteTuples()

	var plan *cluster.FaultPlan
	if *drop > 0 || *delay > 0 || *resetAfter > 0 {
		plan = &cluster.FaultPlan{
			Seed:       *faultSeed,
			Drop:       *drop,
			Delay:      *delay,
			DelayFor:   *delayFor,
			ResetAfter: *resetAfter,
		}
	}
	c, err := cluster.New(cluster.Config{
		Prog:   apps.Forwarding(),
		Funcs:  apps.Funcs(),
		Nodes:  g.Nodes(),
		Scheme: *scheme,
		Faults: plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(routes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster of %d nodes up on loopback TCP (%s scheme); equivalence keys %v\n\n",
		*nodes, *scheme, c.Keys())

	// Traffic: *pairs* random pairs, *packets* each.
	chosen := workload.ChoosePairs(g.Nodes(), *pairs, time.Now().UnixNano()%1000)
	var lastEvents []types.Tuple
	start := time.Now()
	for _, p := range chosen {
		for i := 0; i < *packets; i++ {
			ev := workload.PacketEvent(p, int64(i), 64)
			if err := c.Inject(ev); err != nil {
				log.Fatal(err)
			}
			if i == *packets-1 {
				lastEvents = append(lastEvents, ev)
			}
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	total := *packets * len(chosen)
	fmt.Printf("forwarded %d packets in %v (%s of provenance stored, %s/packet)\n\n",
		total, time.Since(start).Round(time.Millisecond),
		metrics.HumanBytes(c.TotalStorageBytes()),
		metrics.HumanBytes(c.TotalStorageBytes()/int64(total)))

	// Query the provenance of each pair's last packet over the real wire.
	for i, ev := range lastEvents {
		out := types.NewTuple("recv", ev.Args[2], ev.Args[1], ev.Args[2], ev.Args[3])
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Trees) == 0 {
			log.Fatalf("no provenance for %s", out)
		}
		fmt.Printf("query %d: %s\n  latency %v over %d protocol hops\n%s\n",
			i+1, out, res.Latency.Round(time.Microsecond), res.Hops, res.Trees[0])
	}

	if *stats || plan != nil {
		fmt.Printf("transport counters:\n%s", c.TransportStats().Counters())
	}
}
