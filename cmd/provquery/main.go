// Command provquery boots a real TCP cluster (one goroutine + loopback
// listener per node, binary frames on the wire — the Section 6.1.3
// deployment style), runs the packet-forwarding application with
// equivalence-based provenance compression, and issues distributed
// provenance queries, printing the reconstructed trees.
//
// Usage:
//
//	provquery [-nodes 8] [-packets 20] [-pairs 3]
//
// Fault injection (the transport absorbs what the plan injects; -stats
// shows the dial/retry/drop counters at exit):
//
//	provquery -drop 0.05 -reset-after 20 -fault-seed 7 -stats
//
// Distributed tracing (-trace FILE collects one parent-linked span tree
// per injected event and per query across every node they touch, then
// writes the lot as Chrome trace JSON for chrome://tracing / Perfetto):
//
//	provquery -nodes 5 -trace spans.json
//
// For a long-lived serving surface over the same cluster (HTTP queries,
// result caching, /metrics) see cmd/provd.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"provcompress/internal/clusterboot"
	"provcompress/internal/metrics"
	"provcompress/internal/trace"
	"provcompress/internal/types"
	"provcompress/internal/workload"
)

func main() {
	boot := clusterboot.Register(flag.CommandLine)
	packets := flag.Int("packets", 20, "packets per pair")
	pairs := flag.Int("pairs", 3, "communicating pairs")
	stats := flag.Bool("stats", false, "print the transport counters at exit")
	traceOut := flag.String("trace", "", "collect distributed spans and write them to this file as Chrome trace JSON (open in chrome://tracing or Perfetto)")
	flag.Parse()

	var tracer *trace.Collector
	if *traceOut != "" {
		tracer = trace.NewCollector(0)
		boot.Tracer = tracer
	}

	c, g, err := boot.Boot("")
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("cluster of %d nodes up on loopback TCP (%s scheme); equivalence keys %v\n\n",
		boot.Nodes, boot.Scheme, c.Keys())

	// Traffic: *pairs* random pairs, *packets* each.
	chosen := workload.ChoosePairs(g.Nodes(), *pairs, time.Now().UnixNano()%1000)
	var lastEvents []types.Tuple
	start := time.Now()
	for _, p := range chosen {
		for i := 0; i < *packets; i++ {
			ev := workload.PacketEvent(p, int64(i), 64)
			if err := c.Inject(ev); err != nil {
				log.Fatal(err)
			}
			if i == *packets-1 {
				lastEvents = append(lastEvents, ev)
			}
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	total := *packets * len(chosen)
	fmt.Printf("forwarded %d packets in %v (%s of provenance stored, %s/packet)\n\n",
		total, time.Since(start).Round(time.Millisecond),
		metrics.HumanBytes(c.TotalStorageBytes()),
		metrics.HumanBytes(c.TotalStorageBytes()/int64(total)))

	// Query the provenance of each pair's last packet over the real wire.
	for i, ev := range lastEvents {
		out := types.NewTuple("recv", ev.Args[2], ev.Args[1], ev.Args[2], ev.Args[3])
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Trees) == 0 {
			log.Fatalf("no provenance for %s", out)
		}
		fmt.Printf("query %d: %s\n  latency %v over %d protocol hops\n%s\n",
			i+1, out, res.Latency.Round(time.Microsecond), res.Hops, res.Trees[0])
		if tracer != nil {
			// The acceptance bar for tracing: every distributed query
			// yields one parent-linked span tree across all hops.
			spans := tracer.Trace(res.TraceID)
			if err := trace.CheckLinked(spans); err != nil {
				log.Fatalf("query %d trace %x is not a single parent-linked tree: %v", i+1, uint64(res.TraceID), err)
			}
			fmt.Printf("  trace %016x: %d spans over nodes %v\n\n",
				uint64(res.TraceID), len(spans), trace.Nodes(spans))
		}
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTraceAll(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		// Self-check the artifact: an empty or malformed trace file fails
		// loudly here instead of silently in the trace viewer.
		data, err := os.ReadFile(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		n, err := trace.ValidateChrome(data)
		if err != nil {
			log.Fatalf("trace file %s invalid: %v", *traceOut, err)
		}
		fmt.Printf("wrote %d spans (%d traces, %s) to %s\n",
			n, tracer.TraceCount(), metrics.HumanBytes(int64(len(data))), *traceOut)
	}

	if *stats || boot.Plan() != nil {
		fmt.Printf("transport counters:\n%s", c.TransportStats().Counters())
	}
}
