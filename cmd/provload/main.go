// Command provload is the load generator for provd: it samples the
// daemon's output tuples with a Zipf distribution (hot queries recur, so
// the result cache does real work) and hammers /v1/query from concurrent
// clients, reporting achieved QPS and p50/p95/p99 latency.
//
// Usage (against a running provd):
//
//	provload -addr http://127.0.0.1:8463 -n 5000 -c 16 -alpha 0.9
//
// With -inject, provload first pushes a packet workload through
// POST /v1/events so a freshly started daemon has outputs to query:
//
//	provload -inject -nodes 8 -packets 40
//
// With -mixed, a background writer keeps injecting fresh events into one
// equivalence class (-write-src/-write-dst, default n0->n1) while the
// readers run, and the report adds the write count and cache hit rate —
// the A/B measurement against a daemon started with epoch invalidation:
//
//	provload -inject -mixed -write-interval 1ms
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"provcompress/internal/provserve"
	"provcompress/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8463", "provd base URL")
	scheme := flag.String("scheme", "", "provenance scheme to query (empty = daemon default)")
	n := flag.Int("n", 2000, "total queries to issue")
	c := flag.Int("c", 8, "concurrent client workers")
	alpha := flag.Float64("alpha", 0.9, "Zipf exponent for query popularity")
	seed := flag.Int64("seed", 1, "Zipf sampler seed")
	inject := flag.Bool("inject", false, "inject a packet workload before querying")
	nodes := flag.Int("nodes", 8, "with -inject: daemon chain length (packets run n0 -> n<last>)")
	packets := flag.Int("packets", 40, "with -inject: packets to inject")
	mixed := flag.Bool("mixed", false, "run a writer alongside the readers and report the cache hit rate")
	writeInterval := flag.Duration("write-interval", time.Millisecond, "with -mixed: gap between injected writer events")
	writeSrc := flag.String("write-src", "n0", "with -mixed: writer packet source node")
	writeDst := flag.String("write-dst", "n1", "with -mixed: writer packet destination node")
	tenant := flag.String("tenant", "", "tenant label to bill the run against (empty = default tenant)")
	flag.Parse()

	if *inject {
		if err := injectWorkload(*addr, *nodes, *packets); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected %d packets\n", *packets)
	}

	lcfg := provserve.LoadConfig{
		BaseURL:     *addr,
		Scheme:      *scheme,
		Requests:    *n,
		Concurrency: *c,
		Alpha:       *alpha,
		Seed:        *seed,
		Tenant:      *tenant,
	}
	if *mixed {
		report, err := provserve.RunMixedLoad(provserve.MixedLoadConfig{
			LoadConfig:    lcfg,
			WriteInterval: *writeInterval,
			WriteSrc:      *writeSrc,
			WriteDst:      *writeDst,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
		return
	}
	report, err := provserve.RunLoad(lcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
}

// injectWorkload pushes packets end to end across the daemon's chain and
// waits for quiescence, mirroring the selftest's workload shape.
func injectWorkload(addr string, nodes, packets int) error {
	type tupleSpec struct {
		Rel  string `json:"rel"`
		Args []any  `json:"args"`
	}
	last := fmt.Sprintf("n%d", nodes-1)
	var events []tupleSpec
	for i := 0; i < packets; i++ {
		dst := last
		if i%3 == 1 && nodes > 2 {
			dst = fmt.Sprintf("n%d", nodes/2)
		}
		events = append(events, tupleSpec{
			Rel:  "packet",
			Args: []any{"n0", "n0", dst, workload.Payload(int64(i), 48)},
		})
	}
	body, err := json.Marshal(map[string]any{"events": events, "wait_ms": 30000})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(addr+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("provload: inject status %s", resp.Status)
	}
	return nil
}
