// Command delpc is the DELP compiler front-end: it parses an NDlog
// program, validates the DELP restriction (Definition 1 of the paper),
// runs the equivalence-key static analysis (Section 5.2), and reports the
// program structure. With -dot it emits the attribute-level dependency
// graph in Graphviz format (Figure 17 style).
//
// Usage:
//
//	delpc [-dot] [-quiet] <program.dlog>
//	delpc [-dot] -app forwarding|dns|arp|dhcp
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"provcompress/internal/analysis"
	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
)

func main() {
	app := flag.String("app", "", "analyze a bundled application (forwarding, dns, arp, dhcp) instead of a file")
	dot := flag.Bool("dot", false, "emit the dependency graph in Graphviz format and exit")
	quiet := flag.Bool("quiet", false, "only validate; print nothing on success")
	flag.Parse()

	var (
		prog *ndlog.Program
		err  error
	)
	switch {
	case *app != "":
		switch *app {
		case "forwarding":
			prog = apps.Forwarding()
		case "dns":
			prog = apps.DNS()
		case "arp":
			prog = apps.ARP()
		case "dhcp":
			prog = apps.DHCP()
		default:
			fatalf("unknown application %q (want forwarding, dns, arp, or dhcp)", *app)
		}
	case flag.NArg() == 1:
		src, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fatalf("%v", rerr)
		}
		prog, err = ndlog.ParseDELP(string(src))
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: delpc [-dot] [-quiet] <program.dlog> | delpc -app <name>")
		os.Exit(2)
	}

	g := analysis.BuildGraph(prog)
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	if *quiet {
		return
	}

	fmt.Printf("program: %d rules, valid DELP\n\n", len(prog.Rules))
	fmt.Print(prog.String())

	fmt.Printf("\ninput event relation: %s\n", prog.InputEvent())
	fmt.Printf("slow-changing relations: %s\n", joinSorted(prog.SlowRelations()))
	fmt.Printf("output relations: %s\n", joinSorted(prog.OutputRelations()))

	keys := g.EquivalenceKeys()
	fmt.Printf("equivalence keys: ")
	for i, k := range keys {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s:%d", prog.InputEvent(), k)
	}
	fmt.Println()
	_ = err
}

func joinSorted(set map[string]bool) string {
	var names []string
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	if out == "" {
		out = "(none)"
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delpc: "+format+"\n", args...)
	os.Exit(1)
}
