// Benchmark harness: provsim -bench-out DIR runs the performance suite and
// writes two machine-readable baselines:
//
//   - BENCH_engine.json — the indexed-vs-scan join microbenchmark plus one
//     record per simulated figure run (headline metric and wall-clock time),
//     tracking the evaluator the paper's experiments run on.
//   - BENCH_serve.json — the query service measured end to end over HTTP:
//     event ingestion into a live cluster, then cold versus cached
//     provenance query latency.
//
// -bench-smoke shrinks every workload so the suite finishes in a few
// seconds; `make bench-smoke` runs it against a scratch directory as part
// of `make verify`, while committed baselines come from the full run.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/experiments"
	"provcompress/internal/ndlog"
	"provcompress/internal/provserve"
	"provcompress/internal/store"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

type joinBenchRecord struct {
	Rule            string  `json:"rule"`
	FiringsPerEvent int     `json:"firings_per_event"`
	IndexedNSOp     float64 `json:"indexed_ns_per_event"`
	ScanNSOp        float64 `json:"scan_ns_per_event"`
	Speedup         float64 `json:"speedup"`
}

type figureRecord struct {
	Name     string            `json:"name"`
	WallMS   float64           `json:"wall_ms"`
	Headline map[string]string `json:"headline"`
}

type engineBenchFile struct {
	GeneratedBy string          `json:"generated_by"`
	Smoke       bool            `json:"smoke,omitempty"`
	Join        joinBenchRecord `json:"join_microbench"`
	Figures     []figureRecord  `json:"figures"`
}

type serveBenchFile struct {
	GeneratedBy  string                  `json:"generated_by"`
	Smoke        bool                    `json:"smoke,omitempty"`
	Nodes        int                     `json:"nodes"`
	Events       int                     `json:"events"`
	IngestWallMS float64                 `json:"ingest_wall_ms"`
	Queries      int                     `json:"queries"`
	ColdMeanMS   float64                 `json:"cold_mean_ms"`
	CachedMeanMS float64                 `json:"cached_mean_ms"`
	CacheSpeedup float64                 `json:"cache_speedup"`
	Durability   []durabilityBenchRecord `json:"durability"`
	Rebalance    rebalanceBenchRecord    `json:"rebalance"`
	Ingest       []ingestBenchRecord     `json:"ingest"`
	Cache        []cacheBenchRecord      `json:"cache"`
	// Scenarios holds one soak record per registered DELP scenario
	// (forwarding, bgp, gossip) — see soak.go.
	Scenarios []scenarioBenchRecord `json:"scenarios"`
}

// rebalanceBenchRecord measures the elastic membership subsystem: a
// replicated chain cluster absorbs one join and one leave after ingesting
// a workload, and the record tracks how long each rebalance took and how
// many bytes the average partition handoff moved.
type rebalanceBenchRecord struct {
	Nodes            int     `json:"nodes"`
	Replicas         int     `json:"replicas"`
	Events           int     `json:"events"`
	JoinMS           float64 `json:"join_ms"`
	LeaveMS          float64 `json:"leave_ms"`
	Handoffs         int64   `json:"handoffs"`
	HandoffBytes     int64   `json:"handoff_bytes"`
	BytesPerHandoff  float64 `json:"bytes_per_handoff"`
	RebalanceSeconds float64 `json:"rebalance_seconds"`
}

// durabilityBenchRecord measures what durability costs and buys per
// scheme: WAL bytes per injected event (cost, summed over every hop the
// event touches) and cold-start recovery time for a full-log replay
// (what a crash pays).
type durabilityBenchRecord struct {
	Scheme           string  `json:"scheme"`
	Events           int     `json:"events"`
	WALRecords       int64   `json:"wal_records"`
	WALBytes         int64   `json:"wal_bytes"`
	WALBytesPerEvent float64 `json:"wal_bytes_per_event"`
	ReplayedRecords  int64   `json:"replayed_records"`
	RecoveryMS       float64 `json:"recovery_ms"`
}

// runBench executes the suite and writes the two baseline files into dir.
func runBench(dir string, smoke bool, fcfg experiments.ForwardingConfig, dcfg experiments.DNSConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	eng, err := benchEngine(smoke, fcfg, dcfg)
	if err != nil {
		return err
	}
	if err := writeBenchFile(filepath.Join(dir, "BENCH_engine.json"), eng); err != nil {
		return err
	}
	srv, err := benchServe(smoke)
	if err != nil {
		return err
	}
	if err := writeBenchFile(filepath.Join(dir, "BENCH_serve.json"), srv); err != nil {
		return err
	}
	fmt.Printf("bench: join speedup %.1fx, cache speedup %.1fx (baselines in %s)\n",
		eng.Join.Speedup, srv.CacheSpeedup, dir)
	return nil
}

func writeBenchFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchEngine measures the evaluator: the high-fanin join A/B and the
// figure runs whose inner loop it is.
func benchEngine(smoke bool, fcfg experiments.ForwardingConfig, dcfg experiments.DNSConfig) (*engineBenchFile, error) {
	out := &engineBenchFile{GeneratedBy: "provsim -bench-out", Smoke: smoke}

	// Join microbenchmark, the same workload as BenchmarkJoinHighFanin:
	// event key X joins 16 of 512 a-rows, each Y two b-rows — 32 firings.
	src := `r out(@L, X, Y, Z) :- e(@L, X), a(@L, Y, X), b(@L, Z, Y).`
	prog := ndlog.MustParse(src)
	r := prog.Rule("r")
	db := engine.NewDatabase()
	loc := types.String("n")
	for i := 0; i < 512; i++ {
		db.Insert(types.NewTuple("a", loc, types.Int(int64(i)), types.Int(int64(i%32))))
		db.Insert(types.NewTuple("b", loc, types.Int(int64(i)), types.Int(int64(i))))
		db.Insert(types.NewTuple("b", loc, types.Int(int64(i+1000)), types.Int(int64(i))))
	}
	ev := types.NewTuple("e", loc, types.Int(0))
	plan := engine.CompileRule(r)
	indexedIters, scanIters := 2000, 100
	if smoke {
		indexedIters, scanIters = 100, 5
	}
	measure := func(iters int, eval func() ([]engine.Firing, error)) (float64, error) {
		if _, err := eval(); err != nil { // warm (index build, caches)
			return 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			firings, err := eval()
			if err != nil {
				return 0, err
			}
			if len(firings) != 32 {
				return 0, fmt.Errorf("bench join: %d firings, want 32", len(firings))
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
	}
	indexedNS, err := measure(indexedIters, func() ([]engine.Firing, error) { return plan.Eval(db, ev, nil) })
	if err != nil {
		return nil, err
	}
	scanNS, err := measure(scanIters, func() ([]engine.Firing, error) { return engine.EvalRuleScan(r, db, ev, nil) })
	if err != nil {
		return nil, err
	}
	out.Join = joinBenchRecord{
		Rule: src, FiringsPerEvent: 32,
		IndexedNSOp: indexedNS, ScanNSOp: scanNS, Speedup: scanNS / indexedNS,
	}

	// Figure runs: one forwarding (fig8) and one DNS (fig13) workload —
	// storage is the headline metric of both.
	if smoke {
		fcfg.Pairs, fcfg.Rate, fcfg.Duration = 4, 10, time.Second
		dcfg.Tree = topo.DNSTreeConfig{NumServers: 10, MaxDepth: 4, Seed: 1}
		dcfg.URLs, dcfg.Clients, dcfg.Rate, dcfg.Duration = 6, 2, 40, time.Second
	}
	figs := []struct {
		name string
		run  func() (experiments.Result, error)
	}{
		{"fig8", func() (experiments.Result, error) { return experiments.Fig8(fcfg) }},
		{"fig13", func() (experiments.Result, error) { return experiments.Fig13(dcfg) }},
	}
	for _, fig := range figs {
		start := time.Now()
		res, err := fig.run()
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", fig.name, err)
		}
		wall := time.Since(start)
		rows := res.Rows()
		headline := make(map[string]string)
		if len(rows) > 0 {
			last := rows[len(rows)-1]
			for i, h := range res.Headers() {
				if i < len(last) {
					headline[h] = last[i]
				}
			}
		}
		out.Figures = append(out.Figures, figureRecord{
			Name:     fig.name,
			WallMS:   float64(wall.Microseconds()) / 1000,
			Headline: headline,
		})
	}
	return out, nil
}

// benchServe measures the provenance query service end to end: a chain
// cluster behind the HTTP daemon, events ingested with read-your-writes
// quiescence, then every derivation queried twice — cold (distributed
// walk) and cached.
func benchServe(smoke bool) (*serveBenchFile, error) {
	nodes, events := 8, 40
	if smoke {
		nodes, events = 5, 6
	}
	g := topo.Line(nodes, "n")
	c, err := cluster.New(cluster.Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: g.Nodes(),
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		return nil, err
	}
	srv, err := provserve.New(provserve.Config{
		Clusters: map[string]*cluster.Cluster{"advanced": c},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	dst := fmt.Sprintf("n%d", nodes-1)
	evs := make([]types.Tuple, events)
	specs := make([]map[string]any, events)
	for i := range evs {
		payload := fmt.Sprintf("p%d", i)
		evs[i] = types.NewTuple("packet",
			types.String("n0"), types.String("n0"), types.String(dst), types.String(payload))
		specs[i] = map[string]any{"rel": "packet", "args": []any{"n0", "n0", dst, payload}}
	}
	body, err := json.Marshal(map[string]any{"events": specs, "wait_ms": 60_000})
	if err != nil {
		return nil, err
	}
	ingestStart := time.Now()
	resp, err := http.Post(hts.URL+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var evResp struct {
		Accepted int  `json:"accepted"`
		Quiesced bool `json:"quiesced"`
	}
	err = json.NewDecoder(resp.Body).Decode(&evResp)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	ingestWall := time.Since(ingestStart)
	if evResp.Accepted != events || !evResp.Quiesced {
		return nil, fmt.Errorf("bench serve: accepted %d/%d, quiesced %v", evResp.Accepted, events, evResp.Quiesced)
	}

	query := func(ev types.Tuple, wantCached bool) (time.Duration, error) {
		args, _ := json.Marshal([]any{dst, "n0", dst, ev.Args[3].AsString()})
		u := fmt.Sprintf("%s/v1/query?rel=recv&args=%s&evid=%s",
			hts.URL, url.QueryEscape(string(args)), types.HashTuple(ev).Hex())
		start := time.Now()
		resp, err := http.Get(u)
		if err != nil {
			return 0, err
		}
		lat := time.Since(start)
		var qr struct {
			Cached bool     `json:"cached"`
			Trees  []string `json:"trees"`
		}
		err = json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK || len(qr.Trees) != 1 || qr.Cached != wantCached {
			return 0, fmt.Errorf("bench serve: query %v: status %d, %d trees, cached %v (want %v)",
				ev, resp.StatusCode, len(qr.Trees), qr.Cached, wantCached)
		}
		return lat, nil
	}
	var coldTotal, cachedTotal time.Duration
	for _, ev := range evs {
		lat, err := query(ev, false)
		if err != nil {
			return nil, err
		}
		coldTotal += lat
	}
	for _, ev := range evs {
		lat, err := query(ev, true)
		if err != nil {
			return nil, err
		}
		cachedTotal += lat
	}
	cold := float64(coldTotal.Microseconds()) / float64(events) / 1000
	cached := float64(cachedTotal.Microseconds()) / float64(events) / 1000
	dur, err := benchDurability(smoke)
	if err != nil {
		return nil, err
	}
	reb, err := benchRebalance(smoke)
	if err != nil {
		return nil, err
	}
	ing, err := benchIngest(smoke)
	if err != nil {
		return nil, err
	}
	cch, err := benchCache(smoke)
	if err != nil {
		return nil, err
	}
	scen, err := benchScenarios(smoke)
	if err != nil {
		return nil, err
	}
	return &serveBenchFile{
		GeneratedBy:  "provsim -bench-out",
		Smoke:        smoke,
		Nodes:        nodes,
		Events:       events,
		IngestWallMS: float64(ingestWall.Microseconds()) / 1000,
		Queries:      2 * events,
		ColdMeanMS:   cold,
		CachedMeanMS: cached,
		CacheSpeedup: cold / cached,
		Durability:   dur,
		Rebalance:    reb,
		Ingest:       ing,
		Cache:        cch,
		Scenarios:    scen,
	}, nil
}

// benchRebalance loads a replicated chain cluster with provenance, then
// times one member joining (bootstrap handoff of the partitions it wins)
// and one member leaving (drain handoff of everything it held).
func benchRebalance(smoke bool) (rebalanceBenchRecord, error) {
	nodes, events := 8, 40
	if smoke {
		nodes, events = 5, 6
	}
	rec := rebalanceBenchRecord{Nodes: nodes, Replicas: 2, Events: events}
	g := topo.Line(nodes, "n")
	c, err := cluster.New(cluster.Config{
		Prog:     apps.Forwarding(),
		Funcs:    apps.Funcs(),
		Nodes:    g.Nodes(),
		Replicas: rec.Replicas,
	})
	if err != nil {
		return rec, err
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		return rec, err
	}
	dst := fmt.Sprintf("n%d", nodes-1)
	for i := 0; i < events; i++ {
		ev := types.NewTuple("packet",
			types.String("n0"), types.String("n0"), types.String(dst),
			types.String(fmt.Sprintf("r%d", i)))
		if err := c.Inject(ev); err != nil {
			return rec, err
		}
	}
	if err := c.Quiesce(time.Minute); err != nil {
		return rec, err
	}

	start := time.Now()
	if err := c.Join("zbench0"); err != nil {
		return rec, fmt.Errorf("bench rebalance: join: %w", err)
	}
	if err := c.Quiesce(time.Minute); err != nil {
		return rec, err
	}
	rec.JoinMS = float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	if err := c.Leave("n1"); err != nil {
		return rec, fmt.Errorf("bench rebalance: leave: %w", err)
	}
	if err := c.Quiesce(time.Minute); err != nil {
		return rec, err
	}
	rec.LeaveMS = float64(time.Since(start).Microseconds()) / 1000

	s := c.MembershipStats()
	if s.Handoffs == 0 || s.HandoffBytes == 0 {
		return rec, fmt.Errorf("bench rebalance: no partition data moved: %+v", s)
	}
	rec.Handoffs = s.Handoffs
	rec.HandoffBytes = s.HandoffBytes
	rec.BytesPerHandoff = float64(s.HandoffBytes) / float64(s.Handoffs)
	rec.RebalanceSeconds = s.RebalanceSeconds
	return rec, nil
}

// benchDurability runs the same forwarding workload once per scheme on a
// durable cluster (fsync off, no automatic snapshots, so the whole run
// stays in the WAL), then cold-starts a second cluster from the same data
// dir and measures the full-log replay.
func benchDurability(smoke bool) ([]durabilityBenchRecord, error) {
	nodes, events := 8, 40
	if smoke {
		nodes, events = 5, 6
	}
	g := topo.Line(nodes, "n")
	routes := g.ShortestPaths().RouteTuples()
	dst := fmt.Sprintf("n%d", nodes-1)
	var out []durabilityBenchRecord
	for _, scheme := range []string{core.SchemeExSPAN, core.SchemeBasic, core.SchemeAdvanced} {
		dir, err := os.MkdirTemp("", "provsim-dur-")
		if err != nil {
			return nil, err
		}
		cfg := cluster.Config{
			Prog:       apps.Forwarding(),
			Funcs:      apps.Funcs(),
			Nodes:      g.Nodes(),
			Scheme:     scheme,
			DataDir:    dir,
			Durability: store.Options{Fsync: store.SyncOff},
		}
		rec, err := benchDurabilityScheme(cfg, routes, dst, events)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		rec.Scheme = scheme
		out = append(out, rec)
	}
	return out, nil
}

func benchDurabilityScheme(cfg cluster.Config, routes []types.Tuple, dst string, events int) (durabilityBenchRecord, error) {
	var rec durabilityBenchRecord
	c, err := cluster.New(cfg)
	if err != nil {
		return rec, err
	}
	closed := false
	defer func() {
		if !closed {
			c.Close()
		}
	}()
	if err := c.LoadBase(routes); err != nil {
		return rec, err
	}
	// The route load is logged too; subtract it so the deltas attribute
	// bytes to the injected events alone.
	base := c.DurabilityStats()
	for i := 0; i < events; i++ {
		ev := types.NewTuple("packet",
			types.String("n0"), types.String("n0"), types.String(dst),
			types.String(fmt.Sprintf("d%d", i)))
		if err := c.Inject(ev); err != nil {
			return rec, err
		}
	}
	if err := c.Quiesce(time.Minute); err != nil {
		return rec, err
	}
	after := c.DurabilityStats()
	wantOutputs := len(c.AllOutputs())
	closed = true
	c.Close()

	rec.Events = events
	rec.WALRecords = after.WALRecords - base.WALRecords
	rec.WALBytes = after.WALBytes - base.WALBytes
	rec.WALBytesPerEvent = float64(rec.WALBytes) / float64(events)

	start := time.Now()
	c2, err := cluster.New(cfg)
	if err != nil {
		return rec, fmt.Errorf("bench durability %s: recovery: %w", cfg.Scheme, err)
	}
	defer c2.Close()
	rec.RecoveryMS = float64(time.Since(start).Microseconds()) / 1000
	rec.ReplayedRecords = c2.DurabilityStats().ReplayedRecords
	if got := len(c2.AllOutputs()); got != wantOutputs {
		return rec, fmt.Errorf("bench durability %s: recovered %d outputs, want %d", cfg.Scheme, got, wantOutputs)
	}
	return rec, nil
}
