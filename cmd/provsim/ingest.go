// Sustained-ingest throughput: provsim [-bench-smoke] ingest measures the
// event fast path at two tiers and gates the invariants the batching
// layer must keep. The wire tier pumps frames over a real loopback TCP
// connection — per-tuple framing against coalesced frameBatch deliveries
// with pooled buffers and delta compression — and the cluster tier runs
// the full inject/derive/ship/settle pipeline per provenance scheme with
// batching on and off, reading the byte attribution back from the
// transport counters. The same records land in BENCH_serve.json via
// -bench-out; `make ingest-smoke` runs this target and fails the build
// on a slow fast path or any accounting drift.
package main

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/core"
	"provcompress/internal/topo"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// ingestBenchRecord is one measured ingest run.
type ingestBenchRecord struct {
	Tier           string  `json:"tier"`             // "wire" or "cluster"
	Scheme         string  `json:"scheme,omitempty"` // cluster tier only
	Mode           string  `json:"mode"`             // per-tuple | batched | batched-nocompress | unbatched
	Events         int     `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Batches        int64   `json:"batches,omitempty"`
	BatchFrames    int64   `json:"batch_frames,omitempty"`
	// AccountingDrift is the absolute difference between the per-class
	// byte sums and the wire byte totals, aggregate plus per-link. The
	// exactly-once attribution invariant demands zero.
	AccountingDrift int64 `json:"accounting_drift"`
}

// mallocs reads the cumulative allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// ingestWirePayloads is the workload shape the fast path targets: event
// frames of ~230 bytes where consecutive frames share relation names and
// most metadata bytes (the AdvMeta piggyback pattern).
func ingestWirePayloads() [][]byte {
	base := []byte("tuple:packet:n0:n3:advmeta:")
	for len(base) < 224 {
		base = append(base, "eqkey-0123456789abcdef:"...)
	}
	out := make([][]byte, 64)
	for i := range out {
		p := append([]byte(nil), base...)
		p[40] = byte(i)
		p[len(p)-1] = byte(i * 7)
		out[i] = p
	}
	return out
}

// ingestWireRun pumps events through one loopback TCP connection and
// back out of the frame decoder. mode "per-tuple" frames every event
// individually with a fresh envelope buffer; "batched" coalesces 256
// events per frameBatch with pooled staging buffers, with or without
// delta compression.
func ingestWireRun(mode string, events int) (ingestBenchRecord, error) {
	rec := ingestBenchRecord{Tier: "wire", Mode: mode, Events: events}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rec, err
	}
	defer ln.Close()
	done := make(chan int, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- 0
			return
		}
		defer conn.Close()
		got := 0
		var buf []byte
		for {
			payload, err := wire.ReadFrameBuf(conn, buf)
			if err != nil {
				break
			}
			buf = payload[:cap(payload)]
			d := wire.NewDecoder(payload)
			if d.U8() == 1 { // batch marker, mirrors the cluster's frameBatch
				entries, err := wire.DecodeBatch(d)
				if err != nil {
					break
				}
				got += len(entries)
			} else {
				got++
			}
		}
		done <- got
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return rec, err
	}

	payloads := ingestWirePayloads()
	const perBatch = 256
	wireBytes := 0
	allocs0 := mallocs()
	start := time.Now()
	switch mode {
	case "per-tuple":
		for i := 0; i < events; i++ {
			e := wire.NewEncoder(0)
			e.U8(0)
			e.Str("n0")
			e.U64(uint64(i))
			e.Raw(payloads[i%len(payloads)])
			if err := wire.WriteFrame(conn, e.Bytes()); err != nil {
				return rec, err
			}
			wireBytes += e.Len() + 4
		}
	case "batched", "batched-nocompress":
		compress := mode == "batched"
		entries := make([]wire.BatchEntry, 0, perBatch)
		var sizes []int
		for sent := 0; sent < events; {
			entries = entries[:0]
			for len(entries) < perBatch && sent+len(entries) < events {
				i := sent + len(entries)
				entries = append(entries, wire.BatchEntry{Seq: uint64(i), Epoch: 1, Payload: payloads[i%len(payloads)]})
			}
			buf := wire.GetBuf()
			buf = append(buf, 1) // batch marker
			env, s := wire.AppendBatch(buf, entries, compress, sizes[:0])
			sizes = s
			if err := wire.WriteFrame(conn, env); err != nil {
				return rec, err
			}
			wireBytes += len(env) + 4
			wire.PutBuf(env)
			sent += len(entries)
		}
	default:
		return rec, fmt.Errorf("unknown wire ingest mode %q", mode)
	}
	conn.Close()
	got := <-done
	wall := time.Since(start)
	if got != events {
		return rec, fmt.Errorf("wire ingest %s: receiver decoded %d of %d events", mode, got, events)
	}
	rec.EventsPerSec = float64(events) / wall.Seconds()
	rec.BytesPerEvent = float64(wireBytes) / float64(events)
	rec.AllocsPerEvent = float64(mallocs()-allocs0) / float64(events)
	return rec, nil
}

// ingestClusterRun drives the full pipeline: events injected from a few
// concurrent feeders (so the writers actually see coalescable bursts)
// across a 4-node chain, then quiesced — every derivation shipped,
// every frame settled. The byte attribution is read back and checked
// for drift right here, per link and in aggregate.
func ingestClusterRun(scheme, mode string, events int, tcfg cluster.TransportConfig) (ingestBenchRecord, error) {
	rec := ingestBenchRecord{Tier: "cluster", Scheme: scheme, Mode: mode, Events: events}
	g := topo.Line(4, "n")
	c, err := cluster.New(cluster.Config{
		Prog:      apps.Forwarding(),
		Funcs:     apps.Funcs(),
		Nodes:     g.Nodes(),
		Scheme:    scheme,
		Transport: tcfg,
	})
	if err != nil {
		return rec, err
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		return rec, err
	}
	base := c.TransportStats()
	allocs0 := mallocs()
	start := time.Now()
	const feeders = 4
	errs := make(chan error, feeders)
	for f := 0; f < feeders; f++ {
		go func(f int) {
			for i := f; i < events; i += feeders {
				ev := types.NewTuple("packet",
					types.String("n0"), types.String("n0"), types.String("n3"),
					types.String(fmt.Sprintf("i%d", i)))
				if err := c.Inject(ev); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(f)
	}
	for f := 0; f < feeders; f++ {
		if err := <-errs; err != nil {
			return rec, err
		}
	}
	if err := c.Quiesce(2 * time.Minute); err != nil {
		return rec, err
	}
	wall := time.Since(start)
	s := c.TransportStats()
	rec.EventsPerSec = float64(events) / wall.Seconds()
	rec.BytesPerEvent = float64(s.BytesTotal-base.BytesTotal) / float64(events)
	rec.AllocsPerEvent = float64(mallocs()-allocs0) / float64(events)
	rec.Batches = s.Batches - base.Batches
	rec.BatchFrames = s.BatchFrames - base.BatchFrames

	drift := (s.BytesBase + s.BytesProv + s.BytesQuery + s.BytesBatch) - s.BytesTotal
	if drift < 0 {
		drift = -drift
	}
	var linkTotal int64
	for _, l := range c.LinkByteStats() {
		d := (l.Base + l.Prov + l.Query + l.Batch) - l.Total
		if d < 0 {
			d = -d
		}
		drift += d
		linkTotal += l.Total
	}
	if d := linkTotal - s.BytesTotal; d > 0 {
		drift += d
	} else {
		drift -= d
	}
	rec.AccountingDrift = drift
	return rec, nil
}

// benchIngest runs the full ingest matrix: the wire-tier A/B plus one
// cluster run per (scheme, batching mode), with the compression knob
// isolated on the advanced scheme where the AdvMeta piggyback makes
// consecutive frames most self-similar.
func benchIngest(smoke bool) ([]ingestBenchRecord, error) {
	wireEvents, clusterEvents := 2_000_000, 5_000
	if smoke {
		wireEvents, clusterEvents = 100_000, 400
	}
	var out []ingestBenchRecord
	for _, mode := range []string{"per-tuple", "batched", "batched-nocompress"} {
		rec, err := ingestWireRun(mode, wireEvents)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	runs := []struct {
		scheme, mode string
		tcfg         cluster.TransportConfig
	}{
		{core.SchemeExSPAN, "batched", cluster.TransportConfig{}},
		{core.SchemeExSPAN, "unbatched", cluster.TransportConfig{DisableBatch: true}},
		{core.SchemeBasic, "batched", cluster.TransportConfig{}},
		{core.SchemeBasic, "unbatched", cluster.TransportConfig{DisableBatch: true}},
		{core.SchemeAdvanced, "batched", cluster.TransportConfig{}},
		{core.SchemeAdvanced, "batched-nocompress", cluster.TransportConfig{DisableCompress: true}},
		{core.SchemeAdvanced, "unbatched", cluster.TransportConfig{DisableBatch: true}},
	}
	for _, r := range runs {
		rec, err := ingestClusterRun(r.scheme, r.mode, clusterEvents, r.tcfg)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// runIngest executes the matrix, prints it, and enforces the smoke
// gates: the wire fast path must actually be fast (a conservative floor
// far under the measured ~7x so the gate never flakes), pooled encoding
// must have collapsed the allocation rate, batching must have engaged,
// and the byte accounting must show zero drift everywhere.
func runIngest(w io.Writer, smoke bool) error {
	recs, err := benchIngest(smoke)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-9s %-19s %10s %12s %11s %14s %8s\n",
		"tier", "scheme", "mode", "events", "events/s", "bytes/ev", "allocs/ev", "drift")
	byKey := make(map[string]ingestBenchRecord, len(recs))
	for _, r := range recs {
		byKey[r.Tier+"/"+r.Scheme+"/"+r.Mode] = r
		fmt.Fprintf(w, "%-8s %-9s %-19s %10d %12.0f %11.1f %14.3f %8d\n",
			r.Tier, r.Scheme, r.Mode, r.Events, r.EventsPerSec, r.BytesPerEvent, r.AllocsPerEvent, r.AccountingDrift)
	}

	perTuple, batched := byKey["wire//per-tuple"], byKey["wire//batched"]
	if ratio := batched.EventsPerSec / perTuple.EventsPerSec; ratio < 2 {
		return fmt.Errorf("ingest: batched wire throughput only %.2fx per-tuple, want >= 2x", ratio)
	}
	if perTuple.AllocsPerEvent < 4*batched.AllocsPerEvent {
		return fmt.Errorf("ingest: pooled batched path allocates %.3f/event vs %.3f per-tuple, want >= 4x fewer",
			batched.AllocsPerEvent, perTuple.AllocsPerEvent)
	}
	for _, r := range recs {
		if r.AccountingDrift != 0 {
			return fmt.Errorf("ingest: %s/%s/%s has %d bytes of accounting drift, want 0",
				r.Tier, r.Scheme, r.Mode, r.AccountingDrift)
		}
		if r.Tier == "cluster" && r.Mode != "unbatched" && r.Batches == 0 {
			return fmt.Errorf("ingest: %s/%s formed no batches; coalescing never engaged", r.Scheme, r.Mode)
		}
		if r.Tier == "cluster" && r.Mode == "unbatched" && r.Batches != 0 {
			return fmt.Errorf("ingest: %s/unbatched still wrote %d batches", r.Scheme, r.Batches)
		}
	}
	fmt.Fprintf(w, "ingest: batched wire path %.1fx per-tuple throughput, zero accounting drift\n",
		batched.EventsPerSec/perTuple.EventsPerSec)
	return nil
}
