package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/provserve"
	"provcompress/internal/topo"
)

// cacheBenchRecord is one measured mixed read/write cache run: Zipf
// readers over a preloaded output frame racing a writer that injects a
// fresh event every 500µs into a class the readers never target. The
// "keyed" mode runs the dependency-indexed invalidation the daemon ships
// with; "epoch" restores the old evict-everything-per-event discipline as
// the A/B baseline.
type cacheBenchRecord struct {
	Mode      string  `json:"mode"` // "keyed" | "epoch"
	Nodes     int     `json:"nodes"`
	Events    int     `json:"events"` // preloaded read targets
	Queries   int     `json:"queries"`
	Writes    int     `json:"writes"` // events landed during the read phase
	CacheHits int     `json:"cache_hits"`
	HitRate   float64 `json:"hit_rate"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	QPS       float64 `json:"qps"`
}

// cacheBenchRun boots a fresh chain cluster + daemon, preloads a packet
// workload into classes away from the writer's, then measures the mixed
// workload.
func cacheBenchRun(mode string, smoke bool) (cacheBenchRecord, error) {
	nodes, events, queries := 8, 40, 4000
	if smoke {
		nodes, events, queries = 5, 12, 800
	}
	rec := cacheBenchRecord{Mode: mode, Nodes: nodes, Events: events, Queries: queries}

	g := topo.Line(nodes, "n")
	c, err := cluster.New(cluster.Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: g.Nodes(),
	})
	if err != nil {
		return rec, err
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		return rec, err
	}
	srv, err := provserve.New(provserve.Config{
		Clusters:                map[string]*cluster.Cluster{"advanced": c},
		LegacyEpochInvalidation: mode == "epoch",
	})
	if err != nil {
		return rec, err
	}
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	// Preload: packets n0 -> n<last> and n0 -> n<mid>, never n0 -> n1 —
	// the writer's class stays disjoint from every read target.
	last, mid := fmt.Sprintf("n%d", nodes-1), fmt.Sprintf("n%d", nodes/2)
	specs := make([]map[string]any, events)
	for i := range specs {
		dst := last
		if i%3 == 1 {
			dst = mid
		}
		specs[i] = map[string]any{"rel": "packet", "args": []any{"n0", "n0", dst, fmt.Sprintf("pre-%d", i)}}
	}
	body, err := json.Marshal(map[string]any{"events": specs, "wait_ms": 60_000})
	if err != nil {
		return rec, err
	}
	resp, err := http.Post(hts.URL+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return rec, err
	}
	var evResp struct {
		Accepted int  `json:"accepted"`
		Quiesced bool `json:"quiesced"`
	}
	err = json.NewDecoder(resp.Body).Decode(&evResp)
	resp.Body.Close()
	if err != nil {
		return rec, err
	}
	if evResp.Accepted != events || !evResp.Quiesced {
		return rec, fmt.Errorf("cache bench: preload accepted %d/%d, quiesced %v",
			evResp.Accepted, events, evResp.Quiesced)
	}

	rep, err := provserve.RunMixedLoad(provserve.MixedLoadConfig{
		LoadConfig: provserve.LoadConfig{
			BaseURL:     hts.URL,
			Requests:    queries,
			Concurrency: 8,
			Alpha:       0.9,
			Seed:        1,
		},
		WriteInterval: 500 * time.Microsecond,
		WriteSrc:      "n0",
		WriteDst:      "n1",
	})
	if err != nil {
		return rec, err
	}
	if rep.Errors > 0 || rep.WriteErrors > 0 {
		return rec, fmt.Errorf("cache bench %s: %d query errors, %d write errors", mode, rep.Errors, rep.WriteErrors)
	}
	rec.Writes = rep.Writes
	rec.CacheHits = rep.CacheHits
	rec.HitRate = rep.HitRate
	rec.P50MS = float64(rep.P50.Microseconds()) / 1000
	rec.P99MS = float64(rep.P99.Microseconds()) / 1000
	rec.QPS = rep.QPS
	return rec, nil
}

// benchCache runs the keyed/epoch A/B and returns both records for
// BENCH_serve.json.
func benchCache(smoke bool) ([]cacheBenchRecord, error) {
	var out []cacheBenchRecord
	for _, mode := range []string{"keyed", "epoch"} {
		rec, err := cacheBenchRun(mode, smoke)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// runCacheSmoke executes the A/B, prints it, and enforces the gates the
// keyed cache was built for: under sustained writes the keyed hit rate
// must stay above 0.5 while the epoch baseline collapses toward zero,
// and the writer must actually have sustained writes in both runs.
func runCacheSmoke(w io.Writer, smoke bool) error {
	recs, err := benchCache(smoke)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %6s %7s %8s %7s %9s %9s %9s %10s\n",
		"mode", "nodes", "events", "queries", "writes", "hit-rate", "p50-ms", "p99-ms", "qps")
	byMode := make(map[string]cacheBenchRecord, len(recs))
	for _, r := range recs {
		byMode[r.Mode] = r
		fmt.Fprintf(w, "%-6s %6d %7d %8d %7d %9.3f %9.3f %9.3f %10.0f\n",
			r.Mode, r.Nodes, r.Events, r.Queries, r.Writes, r.HitRate, r.P50MS, r.P99MS, r.QPS)
	}
	keyed, epoch := byMode["keyed"], byMode["epoch"]
	if keyed.Writes == 0 || epoch.Writes == 0 {
		return fmt.Errorf("cache: writer landed no events (keyed %d, epoch %d); runs degenerate",
			keyed.Writes, epoch.Writes)
	}
	if keyed.HitRate <= 0.5 {
		return fmt.Errorf("cache: keyed hit rate %.3f under sustained writes, want > 0.5", keyed.HitRate)
	}
	if epoch.HitRate >= 0.2 {
		return fmt.Errorf("cache: epoch baseline hit rate %.3f, want ~0 (< 0.2) — the A/B lost its contrast", epoch.HitRate)
	}
	if keyed.HitRate <= epoch.HitRate {
		return fmt.Errorf("cache: keyed hit rate %.3f not above epoch baseline %.3f", keyed.HitRate, epoch.HitRate)
	}
	fmt.Fprintf(w, "cache: keyed invalidation holds %.0f%% hits under sustained writes (epoch baseline %.0f%%)\n",
		100*keyed.HitRate, 100*epoch.HitRate)
	return nil
}
