// Command provsim regenerates the figures of the paper's evaluation
// section (Section 6) on the simulated network and prints the series each
// figure plots.
//
// Usage:
//
//	provsim [flags] fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|all
//	provsim [-elastic-nodes N] [-elastic-replicas K] elastic
//	provsim [-bench-smoke] soak
//
// By default the experiments run at a reduced scale that finishes in
// seconds; -paper selects the paper's full parameters (100 pairs at 100
// packets/second for 100 seconds, 1000 DNS requests/second, 100,000 DNS
// requests for fig15 — expect long runs and large memory).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/experiments"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

func main() {
	paper := flag.Bool("paper", false, "run at the paper's full scale")
	pairs := flag.Int("pairs", 0, "override the number of communicating pairs")
	rate := flag.Float64("rate", 0, "override the per-pair packet rate / aggregate DNS rate")
	duration := flag.Duration("duration", 0, "override the experiment duration")
	queries := flag.Int("queries", 100, "number of provenance queries (fig12)")
	seed := flag.Int64("seed", 1, "workload seed")
	csvOut := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	ic := flag.Bool("ic", false, "add the Section 5.4 inter-class variant as a fourth series")
	benchOut := flag.String("bench-out", "", "run the benchmark suite and write BENCH_engine.json and BENCH_serve.json into this directory")
	benchSmoke := flag.Bool("bench-smoke", false, "with -bench-out: shrink the benchmark workloads to finish in seconds")
	elasticNodes := flag.Int("elastic-nodes", 1000, "live cluster size for the elastic target")
	elasticReplicas := flag.Int("elastic-replicas", 2, "replication factor for the elastic target")
	flag.Parse()

	if *benchOut != "" {
		fcfg := experiments.DefaultForwardingConfig()
		dcfg := experiments.DefaultDNSConfig()
		if err := runBench(*benchOut, *benchSmoke, fcfg, dcfg); err != nil {
			fmt.Fprintf(os.Stderr, "provsim: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: provsim [flags] fig8..fig16 | all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	fcfg := experiments.DefaultForwardingConfig()
	dcfg := experiments.DefaultDNSConfig()
	if *paper {
		fcfg = experiments.PaperForwardingConfig()
		dcfg = experiments.PaperDNSConfig()
	}
	if *pairs > 0 {
		fcfg.Pairs = *pairs
	}
	if *rate > 0 {
		fcfg.Rate = *rate
		dcfg.Rate = *rate
	}
	if *duration > 0 {
		fcfg.Duration = *duration
		dcfg.Duration = *duration
	}
	fcfg.Seed = *seed
	dcfg.Seed = *seed
	if *ic {
		fcfg.Schemes = core.AllSchemeNames()
		dcfg.Schemes = core.AllSchemeNames()
	}

	fig10Packets, fig10Pairs := 2000, []int{10, 20, 40, 60, 80, 100}
	fig14Requests, fig14URLs := 200, []int{2, 6, 10, 14, 18, 22, 26, 30, 34, 38}
	fig15Requests := 2000
	updateEvery := 2 * fcfg.Duration / 10
	if *paper {
		fig15Requests = 100_000
		updateEvery = 10 * time.Second
	}

	run := func(name string) {
		var (
			res experiments.Result
			err error
		)
		start := time.Now()
		switch name {
		case "fig8":
			res, err = experiments.Fig8(fcfg)
		case "fig9":
			res, err = experiments.Fig9(fcfg)
		case "fig10":
			res, err = experiments.Fig10(fcfg, fig10Packets, fig10Pairs)
		case "fig11":
			res, err = experiments.Fig11(fcfg, updateEvery)
		case "fig12":
			c := fcfg
			if !*paper && c.Rate > 10 {
				c.Rate = 10 // queries need materialization; keep memory sane
			}
			res, err = experiments.Fig12(c, *queries)
		case "fig13":
			res, err = experiments.Fig13(dcfg)
		case "fig14":
			res, err = experiments.Fig14(dcfg, fig14Requests, fig14URLs)
		case "fig15":
			c := dcfg
			c.Duration = 0
			res, err = experiments.Fig15(c, fig15Requests)
		case "fig16":
			res, err = experiments.Fig16(dcfg)
		case "ablation-ic":
			res, err = experiments.AblationInterClass(12, 10)
		case "ablation-meta":
			res, err = experiments.AblationMetaOverhead([]int{0, 16, 64, 128, 500, 1500})
		case "ablation-query":
			res, err = experiments.AblationQueryScaling([]int{2, 4, 6, 8, 12, 16})
		case "ablation-gzip":
			res, err = experiments.AblationGzip(200)
		default:
			fmt.Fprintf(os.Stderr, "provsim: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "provsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csvOut {
			if err := experiments.WriteCSV(os.Stdout, res); err != nil {
				fmt.Fprintf(os.Stderr, "provsim: %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(experiments.Format(res))
		fmt.Printf("(%s completed in %v wall clock)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	target := flag.Arg(0)
	if target == "tables" {
		printWorkedExampleTables()
		return
	}
	if target == "ingest" {
		if err := runIngest(os.Stdout, *benchSmoke); err != nil {
			fmt.Fprintf(os.Stderr, "provsim: ingest: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if target == "cache" {
		if err := runCacheSmoke(os.Stdout, *benchSmoke); err != nil {
			fmt.Fprintf(os.Stderr, "provsim: cache: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if target == "soak" {
		if err := runSoak(os.Stdout, *benchSmoke); err != nil {
			fmt.Fprintf(os.Stderr, "provsim: soak: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if target == "elastic" {
		if err := runElastic(os.Stdout, *elasticNodes, *elasticReplicas); err != nil {
			fmt.Fprintf(os.Stderr, "provsim: elastic: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if target == "all" {
		for _, name := range []string{
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
			"ablation-ic", "ablation-meta", "ablation-query", "ablation-gzip",
		} {
			run(name)
		}
		return
	}
	run(target)
}

// printWorkedExampleTables reproduces the paper's Tables 1-4: the
// provenance tables each scheme maintains for the Figure 2 / Figure 6
// walkthrough.
func printWorkedExampleTables() {
	scenarios := []struct {
		title  string
		scheme string
		events []types.Tuple
	}{
		{"Table 1 (ExSPAN): packet(@n1,n1,n3,\"data\")", core.SchemeExSPAN,
			[]types.Tuple{pktT("n1", "n1", "n3", "data")}},
		{"Table 2 (Basic): same execution, optimized tables", core.SchemeBasic,
			[]types.Tuple{pktT("n1", "n1", "n3", "data")}},
		{"Table 3 (Advanced): \"data\" then \"url\" share one chain", core.SchemeAdvanced,
			[]types.Tuple{pktT("n1", "n1", "n3", "data"), pktT("n1", "n1", "n3", "url")}},
		{"Table 4 (Advanced+IC): \"ack\" from n2 shares nodes across classes", core.SchemeAdvancedInterClass,
			[]types.Tuple{pktT("n1", "n1", "n3", "data"), pktT("n2", "n2", "n3", "ack")}},
	}
	for _, sc := range scenarios {
		maint, err := core.NewScheme(sc.scheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "provsim:", err)
			os.Exit(1)
		}
		var sched sim.Scheduler
		net := netsim.New(&sched, topo.Fig2())
		rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
		if err := rt.LoadBase(topo.Fig2Routes()); err != nil {
			fmt.Fprintln(os.Stderr, "provsim:", err)
			os.Exit(1)
		}
		for i, ev := range sc.events {
			rt.InjectAt(time.Duration(i)*time.Millisecond, ev)
		}
		rt.Run()
		fmt.Println(sc.title)
		fmt.Println(core.DumpTables(maint.(core.TableSource), net.Graph().Nodes()))
		fmt.Println()
	}
}

func pktT(loc, src, dst, dt string) types.Tuple {
	return types.NewTuple("packet",
		types.String(loc), types.String(src), types.String(dst), types.String(dt))
}
