// Elastic membership simulation: provsim elastic drives the membership
// subsystem at two scales and fails non-zero if any invariant breaks.
//
// Phase A runs the rendezvous ownership map at 1000+ simulated members
// and measures how much of the key space moves when members fail or
// join: rendezvous hashing promises ~f/N movement for f changed members,
// and the phase asserts the observed fraction stays within 3x of that.
//
// Phase B boots a real-socket cluster (size -elastic-nodes, replication
// -elastic-replicas) and walks it through the full elastic lifecycle —
// inject, kill a member mid-chain (queries must stay answerable through
// replica failover), restart it (read-repair), join two newcomers
// (bootstrap handoffs), leave one member (partition handoff + hosted
// forwarding for traffic still addressed to it) — asserting after every
// step that provenance queries answer and the per-class byte accounting
// still sums exactly to the transport total.
package main

import (
	"fmt"
	"io"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/membership"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// runElastic executes both phases; nodes is the live-cluster size.
func runElastic(w io.Writer, nodes, replicas int) error {
	if nodes < 5 {
		return fmt.Errorf("elastic: need at least 5 nodes, have %d", nodes)
	}
	if replicas < 1 {
		return fmt.Errorf("elastic: need -elastic-replicas >= 1 for failover, have %d", replicas)
	}
	start := time.Now()
	if err := elasticOwnershipSim(w, nodes); err != nil {
		return err
	}
	if err := elasticLiveRun(w, nodes, replicas); err != nil {
		return err
	}
	fmt.Fprintf(w, "elastic: ok in %v wall clock\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// elasticOwnershipSim is phase A: the ownership map at simulated scale.
func elasticOwnershipSim(w io.Writer, nodes int) error {
	members := 1000
	if nodes > members {
		members = nodes
	}
	const keys = 4000
	cands := make([]types.NodeAddr, members)
	for i := range cands {
		cands[i] = types.NodeAddr(fmt.Sprintf("m%04d", i))
	}
	eqs := make([]types.ID, keys)
	for i := range eqs {
		eqs[i] = types.HashTuple(types.NewTuple("eq", types.Int(int64(i))))
	}
	owners := make([]types.NodeAddr, keys)
	start := time.Now()
	for i, eq := range eqs {
		owners[i] = membership.PartitionOwner(eq, cands)
	}
	fmt.Fprintf(w, "elastic: ownership map for %d keys over %d members in %v\n",
		keys, members, time.Since(start).Round(time.Millisecond))

	moved := func(after []types.NodeAddr, what string, changed int) error {
		n := 0
		for i, eq := range eqs {
			if membership.PartitionOwner(eq, after) != owners[i] {
				n++
			}
		}
		frac := float64(n) / float64(keys)
		expect := float64(changed) / float64(members)
		fmt.Fprintf(w, "elastic: %s moved %d/%d keys (%.2f%%, rendezvous expectation %.2f%%)\n",
			what, n, keys, 100*frac, 100*expect)
		if frac > 3*expect {
			return fmt.Errorf("elastic: %s moved %.2f%% of keys, > 3x the rendezvous expectation %.2f%%",
				what, 100*frac, 100*expect)
		}
		if n == 0 {
			return fmt.Errorf("elastic: %s moved no keys at all — the ownership map is not responding to membership", what)
		}
		return nil
	}

	// 10 members fail: only their keys may move.
	failed := append([]types.NodeAddr(nil), cands[:members-10]...)
	if err := moved(failed, fmt.Sprintf("killing 10/%d members", members), 10); err != nil {
		return err
	}
	// 10 members join: only keys they win may move.
	joined := append(append([]types.NodeAddr(nil), cands...), make([]types.NodeAddr, 10)...)
	for i := 0; i < 10; i++ {
		joined[members+i] = types.NodeAddr(fmt.Sprintf("j%04d", i))
	}
	return moved(joined, fmt.Sprintf("joining 10 members to %d", members), 10)
}

// elasticLiveRun is phase B: the real-socket elastic lifecycle.
func elasticLiveRun(w io.Writer, nodes, replicas int) error {
	g := topo.Line(nodes, "n")
	c, err := cluster.New(cluster.Config{
		Prog:     apps.Forwarding(),
		Funcs:    apps.Funcs(),
		Nodes:    g.Nodes(),
		Replicas: replicas,
		// A dead in-process peer fails dials instantly (connection
		// refused), so even a generous budget suspects it within ~2s.
		// The generosity is for LIVE peers: at 1000 nodes on few cores a
		// gossip epidemic saturates the scheduler and dials to healthy
		// members stall; a short budget would falsely suspect them and
		// the refutation epidemics would feed the very overload that
		// caused them.
		// IdleConnTimeout matters at 1000 nodes: a gossip epidemic opens
		// O(N log N) burst connections, and with a 20k file-descriptor
		// rlimit they must be reaped once quiet or the next listen() fails.
		Transport: cluster.TransportConfig{
			RetryBudget:     10,
			BackoffMax:      250 * time.Millisecond,
			DialTimeout:     10 * time.Second,
			IdleConnTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Scale the settle windows with the cluster: a 1000-node epidemic on
	// one core is loopback-bound, not logic-bound.
	settle := time.Minute
	converge := 15 * time.Second
	if nodes > 100 {
		settle = 5 * time.Minute
		converge = 2 * time.Minute
	}

	// Route a single destination chain segment (at most 400 hops, so the
	// provenance walk stays well under the orbit guard at any -elastic-nodes).
	span := nodes - 1
	if span > 400 {
		span = 400
	}
	srcIdx, dstIdx := nodes-1-span, nodes-1
	name := func(i int) string { return fmt.Sprintf("n%d", i) }
	src, dst := name(srcIdx), name(dstIdx)
	var routes []types.Tuple
	for i := srcIdx; i < dstIdx; i++ {
		routes = append(routes, types.NewTuple("route",
			types.String(name(i)), types.String(dst), types.String(name(i+1))))
	}
	if err := c.LoadBase(routes); err != nil {
		return err
	}

	checkBytes := func(when string) error {
		s := c.TransportStats()
		if sum := s.BytesBase + s.BytesProv + s.BytesQuery + s.BytesBatch; sum != s.BytesTotal {
			return fmt.Errorf("elastic: %s: byte class sum %d != transport total %d", when, sum, s.BytesTotal)
		}
		return nil
	}
	inject := func(payload string) (types.Tuple, error) {
		ev := types.NewTuple("packet",
			types.String(src), types.String(src), types.String(dst), types.String(payload))
		if err := c.Inject(ev); err != nil {
			return ev, err
		}
		return ev, c.Quiesce(settle)
	}
	query := func(when string, ev types.Tuple) error {
		out := types.NewTuple("recv",
			types.String(dst), types.String(src), types.String(dst), types.String(ev.Args[3].AsString()))
		res, err := c.Query(out, types.HashTuple(ev), settle)
		if err != nil {
			return fmt.Errorf("elastic: query %s: %w", when, err)
		}
		if len(res.Trees) != 1 {
			return fmt.Errorf("elastic: query %s: %d trees, want 1", when, len(res.Trees))
		}
		return checkBytes(when)
	}

	// Baseline: a packet crosses the segment, its provenance answers.
	p1, err := inject("p1")
	if err != nil {
		return err
	}
	if err := query("baseline", p1); err != nil {
		return err
	}
	fmt.Fprintf(w, "elastic: booted %d nodes (replicas %d), baseline query ok\n", nodes, replicas)

	// Kill the member that owns the query output; traffic toward it
	// raises the suspicion, and the baseline provenance must stay
	// answerable — a replica acts as the querier from its shadow.
	victim := types.NodeAddr(dst)
	c.Node(victim).Kill()
	// The prime packet drops at the dead member — that is the point; the
	// quiesce still settles because abandoned frames balance the books.
	if _, err := inject("prime"); err != nil {
		return err
	}
	if err := c.WaitMemberState(victim, membership.Down, converge); err != nil {
		return fmt.Errorf("elastic: suspicion of killed %s did not converge: %w", victim, err)
	}
	if err := query("during outage of "+string(victim), p1); err != nil {
		return err
	}
	if s := c.MembershipStats(); s.Failovers == 0 {
		return fmt.Errorf("elastic: outage query answered without a failover: %+v", s)
	}
	fmt.Fprintf(w, "elastic: killed %s, provenance still answerable via replica failover\n", victim)

	// Restart: the member re-announces and read-repairs from its replicas.
	if err := c.Restart(victim); err != nil {
		return err
	}
	if err := c.WaitMemberState(victim, membership.Up, converge); err != nil {
		return err
	}
	if err := c.Quiesce(settle); err != nil {
		return err
	}
	if err := query("after restart", p1); err != nil {
		return err
	}

	// Join two newcomers through the membership protocol.
	for _, addr := range []types.NodeAddr{"zjoin0", "zjoin1"} {
		if err := c.Join(addr); err != nil {
			return fmt.Errorf("elastic: join %s: %w", addr, err)
		}
		if err := c.WaitMemberState(addr, membership.Up, converge); err != nil {
			ts := c.TransportStats()
			return fmt.Errorf("%w (drops %d, queue drops %d)", err, ts.Drops, ts.QueueDrops)
		}
	}
	if err := c.Quiesce(settle); err != nil {
		return err
	}
	if got := len(c.Members()); got != nodes+2 {
		return fmt.Errorf("elastic: after 2 joins the view has %d members, want %d", got, nodes+2)
	}
	if err := query("after joins", p1); err != nil {
		return err
	}
	fmt.Fprintf(w, "elastic: joined 2 members, view converged to %d\n", nodes+2)

	// Leave a mid-segment member: its partition streams to the rendezvous
	// successors and traffic still addressed to it is redirected and
	// applied by the acting owner.
	leaver := types.NodeAddr(name(dstIdx - 1))
	if err := c.Leave(leaver); err != nil {
		return fmt.Errorf("elastic: leave %s: %w", leaver, err)
	}
	p2, err := inject("p2")
	if err != nil {
		return err
	}
	if err := query("after leave of "+string(leaver), p2); err != nil {
		return err
	}
	if err := query("pre-leave provenance", p1); err != nil {
		return err
	}

	s := c.MembershipStats()
	if s.Handoffs == 0 || s.HandoffBytes == 0 {
		return fmt.Errorf("elastic: lifecycle moved no partition data: %+v", s)
	}
	ts := c.TransportStats()
	fmt.Fprintf(w, "elastic: left %s (handoffs %d, %d bytes, rebalance %.3fs); failovers %d, repairs %d\n",
		leaver, s.Handoffs, s.HandoffBytes, s.RebalanceSeconds, s.Failovers, s.Repairs)
	fmt.Fprintf(w, "elastic: byte classes intact: base %d + prov %d + query %d + batch %d = %d total\n",
		ts.BytesBase, ts.BytesProv, ts.BytesQuery, ts.BytesBatch, ts.BytesTotal)
	return nil
}
