// Soak harness: provsim soak runs every registered scenario (forwarding,
// bgp, gossip) through a full serving lifecycle on one multi-tenant
// daemon — bursty ingest over HTTP, Zipf queries from a well-behaved and
// an over-quota tenant, a slow-state deletion storm with restore — and
// then leak-checks the daemon's gauges against their baseline: graveyard
// tuples, cache entries, dependency keys, and the trace span budget must
// all come back to where they started. The per-scenario measurements
// (events/sec, bytes/event, sig resets, deferred landings, cache
// invalidation counts) land in BENCH_serve.json as the "scenarios" array.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"provcompress/internal/cluster"
	"provcompress/internal/provserve"
	"provcompress/internal/scenario"
	"provcompress/internal/trace"
	"provcompress/internal/types"
	"provcompress/internal/workload"
)

// soakSpanBudget bounds the soak tracer; the leak check asserts retention
// never exceeds it.
const soakSpanBudget = 4096

// soakClasses is how many flush events the cache-drain phase injects: one
// per equivalence class a scenario's events can map onto (bgp cycles four
// prefixes; forwarding and gossip collapse onto one class, where the
// extras are harmless fresh events).
const soakClasses = 4

// scenarioBenchRecord is one scenario's soak measurement.
type scenarioBenchRecord struct {
	Scenario     string  `json:"scenario"`
	Nodes        int     `json:"nodes"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// BytesPerEvent is the transport bytes (all classes) the ingest phase
	// moved per injected event.
	BytesPerEvent float64 `json:"bytes_per_event"`
	Outputs       int     `json:"outputs"`
	Queries       int     `json:"queries"`
	HitRate       float64 `json:"hit_rate"`
	// Storm accounting: waves of slow-state churn, the graveyard high-water
	// mark they buried, and where the gauge ended after the restore pass.
	StormWaves    int `json:"storm_waves"`
	GraveyardPeak int `json:"graveyard_peak"`
	GraveyardEnd  int `json:"graveyard_end"`
	// Advanced-scheme §5.5/§5.3 counters over the whole soak.
	SigClears        int64 `json:"sig_clears"`
	DeferredOutputs  int64 `json:"deferred_outputs"`
	DeferredLandings int64 `json:"deferred_landings"`
	// CacheInvalidations is the daemon's per-reason eviction accounting
	// (entries dropped by class key, VID key, mid-walk race, LRU).
	CacheInvalidations map[string]int64 `json:"cache_invalidations"`
	// GreedyRejected429 is how many of the over-quota tenant's requests
	// were shed; the std tenant's count must be zero and is asserted, not
	// recorded.
	GreedyRejected429 int64 `json:"greedy_rejected_429"`
}

// soakGauges is the leak-check snapshot, read over HTTP like an operator
// would.
type soakGauges struct {
	graveyard   int64
	cacheEntries int64
	depKeys     int64
	traceSpans  int64
}

// scrapeSoakGauges pulls the daemon's /metrics text and extracts the
// gauges the leak check compares.
func scrapeSoakGauges(baseURL string) (soakGauges, error) {
	var g soakGauges
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return g, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return g, err
	}
	if resp.StatusCode != http.StatusOK {
		return g, fmt.Errorf("soak: metrics scrape: %s", resp.Status)
	}
	text := string(body)
	for _, m := range []struct {
		name string
		dst  *int64
	}{
		{`provd_graveyard_tuples{scheme="advanced"}`, &g.graveyard},
		{`provd_cache_entries`, &g.cacheEntries},
		{`provd_cache_dep_keys`, &g.depKeys},
		{`provd_trace_spans`, &g.traceSpans},
	} {
		v, err := promGaugeValue(text, m.name)
		if err != nil {
			return g, err
		}
		*m.dst = v
	}
	return g, nil
}

// promGaugeValue finds `name value` in a Prometheus text exposition. The
// name must match a full series (metric plus labels), not a prefix of a
// longer one.
func promGaugeValue(text, name string) (int64, error) {
	for _, line := range bytes.Split([]byte(text), []byte("\n")) {
		rest, ok := bytes.CutPrefix(line, []byte(name))
		if !ok || len(rest) == 0 || rest[0] != ' ' {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(string(rest), "%f", &v); err != nil {
			return 0, fmt.Errorf("soak: bad gauge line %q: %w", line, err)
		}
		return int64(v), nil
	}
	return 0, fmt.Errorf("soak: gauge %s not found in /metrics", name)
}

// soakSpec converts a tuple into the /v1/events wire form.
func soakSpec(t types.Tuple) map[string]any {
	args := make([]any, len(t.Args))
	for i, a := range t.Args {
		switch a.Kind() {
		case types.KindInt:
			args[i] = a.AsInt()
		case types.KindBool:
			args[i] = a.AsBool()
		default:
			args[i] = a.AsString()
		}
	}
	return map[string]any{"rel": t.Rel, "args": args}
}

// soakPost sends one batch of events as the given tenant, with
// read-your-writes quiescence.
func soakPost(baseURL, tenant string, events []map[string]any) error {
	body, err := json.Marshal(map[string]any{"events": events, "wait_ms": 60_000})
	if err != nil {
		return err
	}
	resp, err := http.Post(baseURL+"/v1/events?tenant="+tenant, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var evResp struct {
		Accepted int  `json:"accepted"`
		Quiesced bool `json:"quiesced"`
	}
	err = json.NewDecoder(resp.Body).Decode(&evResp)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || evResp.Accepted != len(events) || !evResp.Quiesced {
		return fmt.Errorf("soak: batch of %d: status %d, accepted %d, quiesced %v",
			len(events), resp.StatusCode, evResp.Accepted, evResp.Quiesced)
	}
	return nil
}

// soakScenario runs one scenario's full lifecycle and returns its record.
func soakScenario(name string, smoke bool) (scenarioBenchRecord, error) {
	nodes, queries, stormWaves := 9, 1200, 6
	burst := workload.Bursty{Period: time.Second, BurstLen: 450 * time.Millisecond, Rate: 40}
	horizon := 4 * time.Second
	if smoke {
		nodes, queries, stormWaves = 6, 250, 3
		burst = workload.Bursty{Period: time.Second, BurstLen: 400 * time.Millisecond, Rate: 10}
		horizon = 2 * time.Second
	}
	rec := scenarioBenchRecord{Scenario: name, Nodes: nodes, Queries: queries, StormWaves: stormWaves}

	sc, err := scenario.Get(name)
	if err != nil {
		return rec, err
	}
	g := sc.Topology(nodes)
	tracer := trace.NewCollector(soakSpanBudget)
	c, err := cluster.New(cluster.Config{
		Prog:         sc.Prog(),
		Funcs:        sc.Funcs(),
		Nodes:        g.Nodes(),
		Scheme:       "advanced",
		Tracer:       tracer,
		GraveyardCap: 16,
	})
	if err != nil {
		return rec, err
	}
	defer c.Close()
	if err := c.LoadBase(sc.Base(g)); err != nil {
		return rec, err
	}
	srv, err := provserve.New(provserve.Config{
		Clusters: map[string]*cluster.Cluster{"advanced": c},
		Tracer:   tracer,
		Tenants: []provserve.TenantConfig{
			{Name: "std"}, // unlimited: the well-behaved tenant
			// The greedy tenant's budget covers a handful of requests and
			// then effectively never refills: its load run must 429.
			{Name: "greedy", QPS: 0.001, Burst: 5},
		},
	})
	if err != nil {
		return rec, err
	}
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	base, err := scrapeSoakGauges(hts.URL)
	if err != nil {
		return rec, err
	}

	// Phase 1 — bursty ingest: the generator's schedule shapes the event
	// stream into burst-sized batches (the daemon sees the same
	// arrival-count profile a timed replay would produce, without the
	// idle-gap wall time).
	times := burst.Times(horizon)
	rec.Events = len(times)
	tsBefore := c.TransportStats()
	ingestStart := time.Now()
	var batch []map[string]any
	seq := int64(0)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := soakPost(hts.URL, "std", batch)
		batch = batch[:0]
		return err
	}
	for i, at := range times {
		if i > 0 && at-times[i-1] > burst.BurstLen {
			if err := flush(); err != nil {
				return rec, err
			}
		}
		batch = append(batch, soakSpec(sc.Event(g, seq)))
		seq++
	}
	if err := flush(); err != nil {
		return rec, err
	}
	ingestWall := time.Since(ingestStart)
	rec.EventsPerSec = float64(rec.Events) / ingestWall.Seconds()
	tsAfter := c.TransportStats()
	moved := (tsAfter.BytesBase + tsAfter.BytesProv + tsAfter.BytesQuery + tsAfter.BytesBatch) -
		(tsBefore.BytesBase + tsBefore.BytesProv + tsBefore.BytesQuery + tsBefore.BytesBatch)
	rec.BytesPerEvent = float64(moved) / float64(max(1, rec.Events))
	rec.Outputs = len(c.AllOutputs())
	if rec.Outputs == 0 {
		return rec, fmt.Errorf("soak %s: ingest produced no outputs", name)
	}

	// Phase 2 — Zipf queries: the std tenant's full run must admit
	// everything; the greedy tenant's short run must shed.
	rep, err := provserve.RunLoad(provserve.LoadConfig{
		BaseURL: hts.URL, Requests: queries, Concurrency: 4,
		Alpha: 0.9, Seed: 1, Tenant: "std",
	})
	if err != nil {
		return rec, err
	}
	if rep.Errors > 0 || rep.Rejected > 0 {
		return rec, fmt.Errorf("soak %s: std tenant saw %d errors, %d rejections (want 0/0)",
			name, rep.Errors, rep.Rejected)
	}
	rec.HitRate = float64(rep.CacheHits) / float64(max(1, rep.Requests))
	grep, err := provserve.RunLoad(provserve.LoadConfig{
		BaseURL: hts.URL, Requests: 40, Concurrency: 2,
		Alpha: 0.9, Seed: 2, Tenant: "greedy",
	})
	if err != nil {
		return rec, err
	}
	if grep.Errors > 0 {
		return rec, fmt.Errorf("soak %s: greedy tenant saw %d errors", name, grep.Errors)
	}
	if grep.Rejected == 0 {
		return rec, fmt.Errorf("soak %s: greedy tenant was never rate-limited (%d requests)", name, 40)
	}
	rec.GreedyRejected429 = int64(grep.Rejected)

	// Phase 3 — deletion storm with restore: slow-state churn through the
	// runtime update path. Every insert broadcasts a §5.5 sig, every
	// delete buries a graveyard tuple, and the final restore pass must
	// bring the graveyard gauge back to its baseline.
	churn := make([]types.Tuple, 12)
	for i := range churn {
		churn[i] = sc.Churn(g, i)
	}
	storm := workload.DeletionStorm{Tuples: churn, Waves: stormWaves, Restore: true}
	for _, op := range storm.Ops() {
		if op.Insert {
			err = c.InsertSlow(op.Tuple)
		} else {
			err = c.DeleteSlow(op.Tuple)
		}
		if err != nil {
			return rec, err
		}
		if n := c.GraveyardSize(); n > rec.GraveyardPeak {
			rec.GraveyardPeak = n
		}
	}
	if err := c.Quiesce(time.Minute); err != nil {
		return rec, err
	}
	if rec.GraveyardPeak == 0 {
		return rec, fmt.Errorf("soak %s: deletion storm buried nothing", name)
	}

	// Phase 4 — cache drain: land one fresh event per reachable
	// equivalence class, evicting every cached answer whose walk touched
	// those classes (all of them — the query frame came from phase 1's
	// events). After this the cache gauges must be back at baseline.
	var drain []map[string]any
	for i := int64(0); i < soakClasses; i++ {
		drain = append(drain, soakSpec(sc.Event(g, seq+i)))
	}
	if err := soakPost(hts.URL, "std", drain); err != nil {
		return rec, err
	}

	// Leak checks against the baseline scrape.
	end, err := scrapeSoakGauges(hts.URL)
	if err != nil {
		return rec, err
	}
	rec.GraveyardEnd = int(end.graveyard)
	if end.graveyard != base.graveyard {
		return rec, fmt.Errorf("soak %s: graveyard leaked: %d tuples at end, baseline %d",
			name, end.graveyard, base.graveyard)
	}
	if end.cacheEntries != base.cacheEntries {
		return rec, fmt.Errorf("soak %s: cache leaked: %d entries at end, baseline %d",
			name, end.cacheEntries, base.cacheEntries)
	}
	if end.depKeys != base.depKeys {
		return rec, fmt.Errorf("soak %s: dependency index leaked: %d keys at end, baseline %d",
			name, end.depKeys, base.depKeys)
	}
	if end.traceSpans > soakSpanBudget {
		return rec, fmt.Errorf("soak %s: trace retention %d exceeds the %d-span budget",
			name, end.traceSpans, soakSpanBudget)
	}

	// Advanced-scheme counters: the storm's slow inserts must have fired
	// sig resets on every member.
	adv := c.AdvancedStats()
	rec.SigClears = adv.SigClears
	rec.DeferredOutputs = adv.DeferredOutputs
	rec.DeferredLandings = adv.DeferredLandings
	if rec.SigClears == 0 {
		return rec, fmt.Errorf("soak %s: no sig resets despite %d slow inserts", name, stormWaves*len(churn))
	}

	// Per-reason cache eviction accounting and per-tenant 429 audit from
	// /v1/stats.
	resp, err := http.Get(hts.URL + "/v1/stats")
	if err != nil {
		return rec, err
	}
	var stats struct {
		Server  map[string]int64 `json:"server"`
		Tenants map[string]struct {
			RejectedRate  int64 `json:"rejected_rate"`
			RejectedQuota int64 `json:"rejected_quota"`
		} `json:"tenants"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return rec, err
	}
	rec.CacheInvalidations = make(map[string]int64)
	for k, v := range stats.Server {
		if rest, ok := cutPrefix(k, "cache-invalidated-"); ok {
			rec.CacheInvalidations[rest] = v
		}
	}
	if n := stats.Tenants["std"].RejectedRate + stats.Tenants["std"].RejectedQuota; n != 0 {
		return rec, fmt.Errorf("soak %s: std tenant was rejected %d times", name, n)
	}
	if n := stats.Tenants["greedy"].RejectedRate; n == 0 {
		return rec, fmt.Errorf("soak %s: greedy tenant shows no rate rejections in /v1/stats", name)
	}
	return rec, nil
}

// cutPrefix is strings.CutPrefix without pulling the import into a file
// that otherwise works on bytes.
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || s[:len(prefix)] != prefix {
		return s, false
	}
	return s[len(prefix):], true
}

// benchScenarios soaks every registered scenario for BENCH_serve.json.
func benchScenarios(smoke bool) ([]scenarioBenchRecord, error) {
	var out []scenarioBenchRecord
	for _, name := range scenario.Names() {
		rec, err := soakScenario(name, smoke)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// runSoak executes the soak across all scenarios, prints the table, and
// fails on any lifecycle or leak-check violation (the assertions live in
// soakScenario).
func runSoak(w io.Writer, smoke bool) error {
	recs, err := benchScenarios(smoke)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-11s %6s %7s %9s %10s %8s %9s %7s %6s %6s %7s %7s\n",
		"scenario", "nodes", "events", "events/s", "bytes/ev", "hit-rate",
		"gy-peak", "gy-end", "sigs", "defer", "landed", "429s")
	for _, r := range recs {
		fmt.Fprintf(w, "%-11s %6d %7d %9.0f %10.1f %8.3f %9d %7d %6d %6d %7d %7d\n",
			r.Scenario, r.Nodes, r.Events, r.EventsPerSec, r.BytesPerEvent, r.HitRate,
			r.GraveyardPeak, r.GraveyardEnd, r.SigClears, r.DeferredOutputs,
			r.DeferredLandings, r.GreedyRejected429)
	}
	fmt.Fprintf(w, "soak: %d scenarios clean — graveyard, cache, and dep-key gauges at baseline; only the greedy tenant was throttled\n", len(recs))
	return nil
}
