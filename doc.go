// Package provcompress is a from-scratch reproduction of "Distributed
// Provenance Compression" (SIGMOD 2017): online, equivalence-based
// compression for network provenance of distributed event-driven linear
// programs (DELPs).
//
// The package is the public facade over the implementation:
//
//   - write a network application as a DELP (a restricted NDlog program,
//     Definition 1) and parse it with ParseDELP;
//   - inspect the static analysis with EquivalenceKeys and DependencyDOT
//     (Section 5.2);
//   - build a topology (Fig2, TransitStub, DNSTree, Line, ...), pick a
//     provenance maintenance scheme (ExSPAN, Basic, or Advanced), and run
//     the application on the simulated network with NewSystem;
//   - query any output tuple's distributed provenance with System.Query,
//     which walks the compressed tables across nodes and re-derives the
//     full tree (Sections 4 and 5.6);
//   - regenerate every evaluation figure through internal/experiments, the
//     cmd/provsim binary, or the benchmarks in bench_test.go.
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record.
package provcompress
