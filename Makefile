# Tier-1 gate: `make verify` must pass before merging.
#
#   vet          go vet ./...
#   build        go build ./...
#   test         go test -race ./... (full suite under the race detector)
#   chaos        the seeded fault-injection suite, race-enabled, no test cache
#   serve-smoke  provd end to end over real HTTP: boot on a random port,
#                inject a workload, cold + cached query per scheme (the
#                cached one must be >=10x faster), scrape /metrics and
#                assert non-zero counters, then a short Zipf load phase
#   bench-smoke  the benchmark harness at reduced scale, written to a
#                scratch directory (committed BENCH_*.json baselines stay
#                untouched) — proves the perf suite itself still runs
#
# The chaos tests use fixed FaultPlan seeds, so a failure reproduces
# deterministically; -count=1 defeats the test cache to make sure the
# transport actually runs every time.

GO ?= go
BENCH_SMOKE_DIR := $(or $(TMPDIR),/tmp)/provcompress-bench-smoke

.PHONY: verify vet build test chaos serve-smoke bench bench-smoke

verify: vet build test chaos serve-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

chaos:
	$(GO) test -race -count=1 -run 'Chaos|Malformed|Quiesce|Restart|LateResult' ./internal/cluster/

serve-smoke:
	$(GO) run ./cmd/provd -selftest -nodes 5

# Full benchmark run: Go microbenchmarks plus the provsim suite, which
# refreshes the committed BENCH_engine.json / BENCH_serve.json baselines.
bench:
	$(GO) test -bench=. -benchmem ./internal/engine/ ./internal/cluster/
	$(GO) run ./cmd/provsim -bench-out .

bench-smoke:
	$(GO) run ./cmd/provsim -bench-out $(BENCH_SMOKE_DIR) -bench-smoke
