# Tier-1 gate: `make verify` must pass before merging.
#
#   vet          go vet ./...
#   build        go build ./...
#   test         go test -race ./... (full suite under the race detector)
#   chaos        the seeded fault-injection suite, race-enabled, no test cache
#   serve-smoke  provd end to end over real HTTP: boot on a random port
#                with tracing on, inject a workload, cold + cached query
#                per scheme (the cached one must be >=10x faster), fetch
#                + validate each query's span tree from /v1/trace/{id},
#                scrape /metrics and assert non-zero counters, then a
#                short Zipf load phase
#   trace-smoke  provquery with -trace: every query must yield a single
#                parent-linked span tree and the written Chrome trace
#                JSON must validate (provquery self-checks both and
#                exits non-zero otherwise)
#   bench-smoke  the benchmark harness at reduced scale, written to a
#                scratch directory (committed BENCH_*.json baselines stay
#                untouched) — proves the perf suite itself still runs
#   ingest-smoke the ingest fast path A/B at reduced scale: wire-tier
#                per-tuple vs batched+pooled throughput (batched must be
#                >=2x events/s with >=4x fewer allocs/event) and full
#                cluster runs per scheme, every record required to show
#                zero byte-class accounting drift
#   recover-smoke  crash-recovery end to end against real processes: boot a
#                child provd on a temp -data-dir, inject + record every
#                provenance tree, kill -9 mid-load, reboot and require WAL
#                replay plus identical trees, then a clean SIGTERM
#                (checkpoint) followed by a zero-replay boot
#   elastic-smoke  the membership lifecycle on a small replicated cluster:
#                rendezvous ownership movement at 1000 simulated members,
#                then boot 5 live nodes with 2 replicas and walk through
#                kill (replica failover), restart (read-repair), two joins
#                and a leave (partition handoff) with provenance queries
#                answering and byte-class accounting exact at every step
#   cache-smoke  the keyed-invalidation A/B at reduced scale: a mixed
#                read/write workload (Zipf readers racing a sustained
#                writer) against the dependency-indexed cache and against
#                the legacy epoch baseline — keyed must hold a hit rate
#                > 0.5 where the epoch discipline measures ~0
#   soak-smoke   the multi-tenant scenario soak at reduced scale: every
#                registered DELP scenario (forwarding, bgp, gossip) runs
#                bursty ingest, Zipf queries from a well-behaved and an
#                over-quota tenant (only the greedy one may see 429s), a
#                deletion storm with restore, and a cache drain — then
#                the graveyard, cache-entry, dep-key, and trace-span
#                gauges must all be back at their baselines
#
# The chaos tests use fixed FaultPlan seeds, so a failure reproduces
# deterministically; -count=1 defeats the test cache to make sure the
# transport actually runs every time.

GO ?= go
BENCH_SMOKE_DIR := $(or $(TMPDIR),/tmp)/provcompress-bench-smoke
TRACE_SMOKE_FILE := $(or $(TMPDIR),/tmp)/provcompress-trace-smoke.json

.PHONY: verify vet build test chaos serve-smoke trace-smoke bench bench-smoke ingest-smoke recover-smoke elastic-smoke cache-smoke soak soak-smoke

verify: vet build test chaos serve-smoke trace-smoke bench-smoke ingest-smoke recover-smoke elastic-smoke cache-smoke soak-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

chaos:
	$(GO) test -race -count=1 -run 'Chaos|Malformed|Quiesce|Restart|LateResult' ./internal/cluster/ ./internal/provserve/

serve-smoke:
	$(GO) run ./cmd/provd -selftest -nodes 5 -trace

trace-smoke:
	$(GO) run ./cmd/provquery -nodes 5 -packets 4 -pairs 2 -trace $(TRACE_SMOKE_FILE)

# Full benchmark run: Go microbenchmarks plus the provsim suite, which
# refreshes the committed BENCH_engine.json / BENCH_serve.json baselines.
bench:
	$(GO) test -bench=. -benchmem ./internal/engine/ ./internal/cluster/
	$(GO) run ./cmd/provsim -bench-out .

bench-smoke:
	$(GO) run ./cmd/provsim -bench-out $(BENCH_SMOKE_DIR) -bench-smoke

ingest-smoke:
	$(GO) run ./cmd/provsim -bench-smoke ingest

recover-smoke:
	$(GO) run ./cmd/provd -recover-smoke

elastic-smoke:
	$(GO) run ./cmd/provsim -elastic-nodes 5 -elastic-replicas 2 elastic

cache-smoke:
	$(GO) run ./cmd/provsim -bench-smoke cache

# Full-scale multi-tenant scenario soak (soak-smoke is the verify-gated
# reduced-scale variant).
soak:
	$(GO) run ./cmd/provsim soak

soak-smoke:
	$(GO) run ./cmd/provsim -bench-smoke soak
