module provcompress

go 1.22
