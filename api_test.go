package provcompress

import (
	"strings"
	"testing"
	"time"
)

func TestSystemQuickstartFlow(t *testing.T) {
	sys, err := NewSystem(Fig2(), ForwardingProgram(), SchemeAdvanced, BuiltinFuncs())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadBase(Fig2Routes()...); err != nil {
		t.Fatal(err)
	}
	ev := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str("hello"))
	sys.Inject(ev)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	outs := sys.Outputs()
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
	res, err := sys.Query(outs[0], HashTuple(ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 1 {
		t.Fatalf("trees = %d", len(res.Trees))
	}
	if !res.Trees[0].EventOf().Equal(ev) {
		t.Errorf("event = %v", res.Trees[0].EventOf())
	}
	if sys.TotalStorageBytes() <= 0 || sys.NetworkBytes() <= 0 {
		t.Error("accounting zero")
	}
	if sys.StorageBytes("n3") <= 0 {
		t.Error("n3 stores nothing")
	}
	if sys.Now() <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestNewSystemRejectsBadInputs(t *testing.T) {
	prog, err := Parse("r1 a(@L, X) :- e(@L, X).\nr2 c(@L, X) :- d(@L, X).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(Fig2(), prog, SchemeAdvanced, nil); err == nil {
		t.Error("non-DELP program accepted")
	}
	if _, err := NewSystem(Fig2(), ForwardingProgram(), "zstd", nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestNewSystemRejectsUncompressibleProgram(t *testing.T) {
	// The output location depends on a non-key event attribute, so the
	// Advanced scheme's hmap association cannot work (Section 5.3 Stage 3).
	prog, err := ParseDELP(`r1 out(@H, X) :- e(@L, X, H).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(Line(2, "n"), prog, SchemeAdvanced, nil); err == nil {
		t.Error("uncompressible program accepted under Advanced")
	}
	// The uncompressed schemes handle it fine.
	if _, err := NewSystem(Line(2, "n"), prog, SchemeExSPAN, nil); err != nil {
		t.Errorf("ExSPAN rejected it: %v", err)
	}
}

func TestARPEndToEnd(t *testing.T) {
	g := Line(2, "h")
	sys, err := NewSystem(g, ARPProgram(), SchemeAdvanced, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := []Tuple{
		NewTuple("arpEntry", Str("h1"), Str("10.0.0.9"), Str("aa:bb:cc")),
		NewTuple("known", Str("h1"), Str("h0")),
	}
	if err := sys.LoadBase(base...); err != nil {
		t.Fatal(err)
	}
	ev := NewTuple("arpRequest", Str("h1"), Str("10.0.0.9"), Str("h0"))
	sys.Inject(ev)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	outs := sys.Outputs()
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
	want := NewTuple("arpLearned", Str("h0"), Str("10.0.0.9"), Str("aa:bb:cc"))
	if !outs[0].Equal(want) {
		t.Errorf("output = %v, want %v", outs[0], want)
	}
	res, err := sys.Query(outs[0], HashTuple(ev))
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("query: %v, %d trees", err, len(res.Trees))
	}
	if res.Trees[0].Depth() != 2 {
		t.Errorf("depth = %d, want 2", res.Trees[0].Depth())
	}
}

func TestEquivalenceKeysFacade(t *testing.T) {
	keys := EquivalenceKeys(ForwardingProgram())
	if len(keys) != 2 || keys[0] != 0 || keys[1] != 2 {
		t.Errorf("keys = %v", keys)
	}
}

func TestDependencyDOTFacade(t *testing.T) {
	dot := DependencyDOT(ForwardingProgram())
	if !strings.Contains(dot, "packet:0") {
		t.Errorf("DOT missing nodes:\n%s", dot)
	}
}

func TestParseDELPFacade(t *testing.T) {
	p, err := ParseDELP(`r1 out(@L, X) :- ev(@L, X), cfg(@L, X).`)
	if err != nil {
		t.Fatal(err)
	}
	if p.InputEvent() != "ev" {
		t.Errorf("input event = %s", p.InputEvent())
	}
}

func TestSlowUpdateFacade(t *testing.T) {
	sys, err := NewSystem(Fig2(), ForwardingProgram(), SchemeAdvanced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadBase(Fig2Routes()...); err != nil {
		t.Fatal(err)
	}
	sys.InsertSlow(NewTuple("route", Str("n2"), Str("n1"), Str("n1")))
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sys.DeleteSlow(NewTuple("route", Str("n2"), Str("n1"), Str("n1")))
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDumpAndReplay(t *testing.T) {
	sys, err := NewSystem(Fig2(), ForwardingProgram(), SchemeAdvanced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadBase(Fig2Routes()...); err != nil {
		t.Fatal(err)
	}
	ev := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str("z"))
	sys.Inject(ev)
	if err := sys.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	dump := sys.DumpTables()
	if !strings.Contains(dump, "ruleExec") || !strings.Contains(dump, "prov") {
		t.Errorf("dump malformed:\n%s", dump)
	}
	trees, err := ReplayTrees(ForwardingProgram(), nil, Fig2Routes(), ev, 100)
	if err != nil {
		t.Fatal(err)
	}
	out := NewTuple("recv", Str("n3"), Str("n1"), Str("n3"), Str("z"))
	if got := trees[HashTuple(out)]; len(got) != 1 {
		t.Errorf("replayed trees = %d", len(got))
	}
}

func TestMultiSystemFacade(t *testing.T) {
	tap, err := ParseDELP(`t1 mirror(@M, S, D, DT) :- packet(@L, S, D, DT), tap(@L, M).`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewMultiSystem(Fig2(), []*Program{ForwardingProgram(), tap}, SchemeAdvanced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadBase(Fig2Routes()...); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadBase(NewTuple("tap", Str("n2"), Str("n3"))); err != nil {
		t.Fatal(err)
	}
	ev := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str("x"))
	sys.Inject(ev)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Outputs()) != 2 {
		t.Fatalf("outputs = %v, want recv + mirror", sys.Outputs())
	}
	for _, out := range sys.Outputs() {
		res, err := sys.Query(out, HashTuple(ev))
		if err != nil || len(res.Trees) != 1 {
			t.Errorf("query %v: %v, %d trees", out, err, len(res.Trees))
		}
	}

	// Merge conflicts surface as construction errors.
	bad, _ := Parse(`r1 other(@L, X) :- thing(@L, X).`)
	if _, err := NewMultiSystem(Fig2(), []*Program{ForwardingProgram(), bad}, SchemeAdvanced, nil); err == nil {
		t.Error("conflicting merge accepted")
	}
}

func TestAllSchemesThroughFacade(t *testing.T) {
	for _, scheme := range []string{SchemeExSPAN, SchemeBasic, SchemeAdvanced, SchemeAdvancedInterClass} {
		sys, err := NewSystem(Fig2(), ForwardingProgram(), scheme, nil)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if err := sys.LoadBase(Fig2Routes()...); err != nil {
			t.Fatal(err)
		}
		ev := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str("x"))
		sys.Inject(ev)
		if err := sys.Run(); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res, err := sys.Query(sys.Outputs()[0], ZeroID)
		if err != nil || len(res.Trees) != 1 {
			t.Errorf("%s: query = %v, %v", scheme, res.Trees, err)
		}
	}
}

func TestClusterThroughFacade(t *testing.T) {
	// The facade boots a real TCP cluster under a seeded fault plan; the
	// transport absorbs the faults and the run matches a healthy one.
	c, err := NewCluster(ClusterConfig{
		Prog:   ForwardingProgram(),
		Funcs:  BuiltinFuncs(),
		Nodes:  []NodeAddr{"n1", "n2", "n3"},
		Faults: &FaultPlan{Seed: 3, Drop: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	ev := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str("x"))
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	outs := c.Outputs("n3")
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
	res, err := c.Query(outs[0], HashTuple(ev), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("query: %v (%d trees)", err, len(res.Trees))
	}
	var stats TransportStats = c.TransportStats()
	if stats.Sends == 0 {
		t.Errorf("transport stats empty: %+v", stats)
	}
}
