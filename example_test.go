package provcompress_test

import (
	"fmt"

	"provcompress"
)

// The packet-forwarding program of the paper's Figure 1, parsed from
// source and statically analyzed.
func ExampleEquivalenceKeys() {
	prog, err := provcompress.ParseDELP(`
r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(provcompress.EquivalenceKeys(prog))
	// Output: [0 2]
}

// Running the Figure 2 scenario end to end under equivalence-based
// compression and querying the received packet's provenance.
func ExampleSystem_Query() {
	sys, err := provcompress.NewSystem(
		provcompress.Fig2(),
		provcompress.ForwardingProgram(),
		provcompress.SchemeAdvanced,
		nil)
	if err != nil {
		panic(err)
	}
	if err := sys.LoadBase(provcompress.Fig2Routes()...); err != nil {
		panic(err)
	}

	ev := provcompress.NewTuple("packet",
		provcompress.Str("n1"), provcompress.Str("n1"),
		provcompress.Str("n3"), provcompress.Str("data"))
	sys.Inject(ev)
	if err := sys.Run(); err != nil {
		panic(err)
	}

	res, err := sys.Query(sys.Outputs()[0], provcompress.HashTuple(ev))
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Trees[0])
	// Output:
	// recv(@n3, "n1", "n3", "data") <- r2
	//   packet(@n3, "n1", "n3", "data") <- r1 [route(@n2, "n3", "n3")]
	//     packet(@n2, "n1", "n3", "data") <- r1 [route(@n1, "n3", "n2")]
	//       event packet(@n1, "n1", "n3", "data")
}

// Two packets of one equivalence class share a single provenance chain;
// the storage at the intermediate node does not grow with the second
// packet.
func ExampleSystem_compression() {
	sys, _ := provcompress.NewSystem(provcompress.Fig2(),
		provcompress.ForwardingProgram(), provcompress.SchemeAdvanced, nil)
	_ = sys.LoadBase(provcompress.Fig2Routes()...)

	pkt := func(payload string) provcompress.Tuple {
		return provcompress.NewTuple("packet",
			provcompress.Str("n1"), provcompress.Str("n1"),
			provcompress.Str("n3"), provcompress.Str(payload))
	}
	sys.Inject(pkt("first"))
	_ = sys.Run()
	after1 := sys.StorageBytes("n2")
	sys.Inject(pkt("second"))
	_ = sys.Run()
	after2 := sys.StorageBytes("n2")
	fmt.Println(after1 == after2)
	// Output: true
}

// Merging programs for joint deployment (the Section 8 extension): shared
// rules collapse.
func ExampleMergePrograms() {
	tap, _ := provcompress.ParseDELP(
		`t1 mirror(@M, S, D, DT) :- packet(@L, S, D, DT), tap(@L, M).`)
	merged, err := provcompress.MergePrograms(provcompress.ForwardingProgram(), tap)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(merged.Rules))
	// Output: 3
}

// Validation errors from the DELP restriction (Definition 1) are precise.
func ExampleParseDELP_invalid() {
	_, err := provcompress.ParseDELP(`
r1 a(@L, X) :- e(@L, X).
r2 c(@L, X) :- d(@L, X).
`)
	fmt.Println(err != nil)
	// Output: true
}
