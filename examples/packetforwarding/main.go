// Packetforwarding reproduces the Section 6.1 storage comparison at
// example scale: it runs the forwarding DELP over the 100-node
// transit-stub topology under all three maintenance schemes, streams
// packets between random stub-node pairs, and reports per-scheme
// provenance storage, bandwidth, and the compression ratio.
//
// Run with:
//
//	go run ./examples/packetforwarding [-pairs 20] [-rate 20] [-seconds 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"provcompress"
	"provcompress/internal/metrics"
	"provcompress/internal/topo"
	"provcompress/internal/workload"
)

func main() {
	pairs := flag.Int("pairs", 20, "communicating stub-node pairs")
	rate := flag.Float64("rate", 20, "packets per second per pair")
	seconds := flag.Int("seconds", 5, "duration of the traffic")
	flag.Parse()

	ts := topo.GenTransitStub(topo.DefaultTransitStub())
	diameter, mean := ts.Graph.HopStats()
	fmt.Printf("transit-stub topology: %d nodes (%d transit), hop diameter %d, mean distance %.1f\n\n",
		ts.Graph.NumNodes(), len(ts.Transit), diameter, mean)

	routes := ts.Graph.ShortestPaths().RouteTuples()
	chosen := workload.ChoosePairs(ts.Stubs, *pairs, 1)
	duration := time.Duration(*seconds) * time.Second

	type row struct {
		scheme  string
		storage int64
		wire    int64
		packets int64
	}
	var rows []row
	for _, scheme := range []string{
		provcompress.SchemeExSPAN, provcompress.SchemeBasic, provcompress.SchemeAdvanced,
	} {
		sys, err := provcompress.NewSystem(ts.Graph, provcompress.ForwardingProgram(), scheme, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadBase(routes...); err != nil {
			log.Fatal(err)
		}
		w := workload.PairTraffic{
			Pairs:        chosen,
			Rate:         *rate,
			PayloadBytes: 500,
			Duration:     duration,
		}
		w.Schedule(sys.Runtime, 0)
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			scheme:  scheme,
			storage: sys.TotalStorageBytes(),
			wire:    sys.NetworkBytes(),
			packets: sys.Runtime.Injected(),
		})
	}

	var table [][]string
	base := rows[0].storage
	for _, r := range rows {
		table = append(table, []string{
			r.scheme,
			fmt.Sprint(r.packets),
			metrics.HumanBytes(r.storage),
			metrics.HumanBytes(int64(float64(r.storage)/float64(r.packets))) + "/pkt",
			fmt.Sprintf("%.1fx", float64(base)/float64(r.storage)),
			metrics.HumanBytes(r.wire),
		})
	}
	fmt.Println(metrics.FormatTable(
		[]string{"scheme", "packets", "prov storage", "per packet", "vs ExSPAN", "wire traffic"},
		table))

	fmt.Printf("\nThe Advanced scheme maintains one shared provenance chain per (source,\n" +
		"destination) equivalence class plus a prov-table row per packet, which is\n" +
		"why its storage is an order of magnitude below ExSPAN's while its wire\n" +
		"traffic stays within a few percent (Figures 9 and 11 of the paper).\n")
}
