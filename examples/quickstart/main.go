// Quickstart walks through the paper's running example end to end: the
// 3-node topology of Figure 2 running the packet-forwarding DELP of
// Figure 1 under equivalence-based compression (Section 5).
//
// It injects the two packets of Figure 6 ("data" then "url"), shows that
// only one shared provenance chain is maintained for both, and then
// queries and prints the full provenance tree of each received packet —
// including the one whose provenance was never concretely stored.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"provcompress"
)

func main() {
	// The packet forwarding program of Figure 1 is bundled; it could
	// equally be parsed from source with provcompress.ParseDELP.
	prog := provcompress.ForwardingProgram()

	// Static analysis (Section 5.2): which input-event attributes determine
	// the shape of the provenance tree?
	keys := provcompress.EquivalenceKeys(prog)
	fmt.Printf("equivalence keys of %s: %v  (the input location and the destination)\n\n",
		prog.InputEvent(), keys)

	// Figure 2: n1 -- n2 -- n3, with routes directing n1's and n2's traffic
	// for destination n3.
	sys, err := provcompress.NewSystem(
		provcompress.Fig2(), prog, provcompress.SchemeAdvanced, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadBase(provcompress.Fig2Routes()...); err != nil {
		log.Fatal(err)
	}

	// Figure 6: two packets of the same equivalence class (same source
	// location n1, same destination n3), different payloads.
	pkt := func(payload string) provcompress.Tuple {
		return provcompress.NewTuple("packet",
			provcompress.Str("n1"), provcompress.Str("n1"),
			provcompress.Str("n3"), provcompress.Str(payload))
	}
	evData, evURL := pkt("data"), pkt("url")
	sys.Inject(evData)
	sys.Inject(evURL)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("outputs after forwarding both packets:\n")
	for _, out := range sys.Outputs() {
		fmt.Printf("  %s\n", out)
	}
	fmt.Printf("\nprovenance storage per node (shared chain + per-packet delta):\n")
	for _, n := range []provcompress.NodeAddr{"n1", "n2", "n3"} {
		fmt.Printf("  %s: %d bytes\n", n, sys.StorageBytes(n))
	}

	// Query the provenance of each received packet (Section 5.6). The
	// second packet never had its own tree stored — it is re-derived from
	// the shared chain plus its event (TRANSFORM_TO_D).
	for _, ev := range []provcompress.Tuple{evData, evURL} {
		out := provcompress.NewTuple("recv",
			provcompress.Str("n3"), ev.Args[1], ev.Args[2], ev.Args[3])
		res, err := sys.Query(out, provcompress.HashTuple(ev))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nprovenance of %s\n(query latency %v over %d protocol hops):\n%s",
			out, res.Latency, res.Hops, res.Trees[0])
	}
}
