// Bgproute runs the BGP-style interdomain routing DELP: an advertisement
// for a prefix propagates hop by hop along the slow bgpRoute table (rule
// b1) and installs into the RIB wherever a bgpOwner policy entry exists
// (rule b2). The provenance shape is the opposite of packet forwarding —
// the advert is long-lived and the *slow* state churns: a policy update
// arrives as InsertSlow, broadcasts a §5.5 sig to every AS, and the next
// advertisement of the same class is re-maintained from scratch.
//
// Run with:
//
//	go run ./examples/bgproute
package main

import (
	"fmt"
	"log"

	"provcompress"
	"provcompress/internal/topo"
)

func main() {
	// A 4-AS chain: n0 -- n1 -- n2 -- n3. Adverts enter at n0.
	g := topo.Line(4, "n")
	sys, err := provcompress.NewSystem(g, provcompress.BGPProgram(),
		provcompress.SchemeAdvanced, nil)
	if err != nil {
		log.Fatal(err)
	}

	route := func(loc, prefix, next string) provcompress.Tuple {
		return provcompress.NewTuple("bgpRoute",
			provcompress.Str(loc), provcompress.Str(prefix), provcompress.Str(next))
	}
	owner := func(loc, prefix string) provcompress.Tuple {
		return provcompress.NewTuple("bgpOwner",
			provcompress.Str(loc), provcompress.Str(prefix))
	}
	// The prefix's route threads the whole chain; only the far end owns a
	// policy entry, so the RIB materializes after the longest walk.
	if err := sys.LoadBase(
		route("n0", "p0", "n1"), route("n1", "p0", "n2"), route("n2", "p0", "n3"),
		owner("n3", "p0"),
	); err != nil {
		log.Fatal(err)
	}

	advert := func(seq int64) provcompress.Tuple {
		return provcompress.NewTuple("advert",
			provcompress.Str("n0"), provcompress.Str("p0"),
			provcompress.Str("as-east"), provcompress.Int(seq))
	}
	rib := func(loc string, seq int64) provcompress.Tuple {
		return provcompress.NewTuple("rib",
			provcompress.Str(loc), provcompress.Str("p0"),
			provcompress.Str("as-east"), provcompress.Int(seq))
	}

	// Phase 1: the first advertisement traverses n0 -> n1 -> n2 -> n3 and
	// lands in n3's RIB.
	first := advert(1)
	sys.Inject(first)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: advert 1 propagated; rib installed at n3")

	// Phase 2: a policy update — n1 starts owning p0 too. The InsertSlow
	// broadcasts sig, resetting every AS's equivalence-key table.
	msgsBefore := sys.Runtime.Net.TotalMessages()
	sys.InsertSlow(owner("n1", "p0"))
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: bgpOwner(n1,p0) inserted; sig broadcast reached all %d ASes (%d control messages)\n",
		g.NumNodes(), sys.Runtime.Net.TotalMessages()-msgsBefore)

	// Phase 3: the next advertisement of the same class installs at both
	// owners, and its provenance is concretely re-maintained.
	second := advert(2)
	sys.Inject(second)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 3: advert 2 installed at n1 and n3")

	show := func(out, ev provcompress.Tuple) {
		res, err := sys.Query(out, provcompress.HashTuple(ev))
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Trees) != 1 {
			log.Fatalf("expected one tree for %s, got %d", out, len(res.Trees))
		}
		fmt.Printf("\nprovenance of %s:\n%s", out, res.Trees[0])
	}
	show(rib("n3", 1), first)  // the deep pre-update chain
	show(rib("n1", 2), second) // the post-update install at the new owner
	show(rib("n3", 2), second)
}
