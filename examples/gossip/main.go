// Gossip runs the epidemic rumor-dissemination DELP over a binary
// out-tree: one rumor injected at the root replicates to every gossip
// peer (rule g1) and is delivered wherever a gossipMember row exists
// (rule g2), fanning out exponentially. The provenance trees are wide
// and shallow — the opposite extreme from BGP's deep chains — and a
// single equivalence class per node absorbs every rumor.
//
// Run with:
//
//	go run ./examples/gossip
package main

import (
	"fmt"
	"log"

	"provcompress"
	"provcompress/internal/scenario"
)

func main() {
	// A 7-member binary out-tree rooted at n0 (n0 -> n1,n2; n1 -> n3,n4;
	// n2 -> n5,n6).
	g := scenario.GossipTree(7)
	sys, err := provcompress.NewSystem(g, provcompress.GossipProgram(),
		provcompress.SchemeAdvanced, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Peers follow the tree's child edges; every node is a member.
	nodes := g.Nodes()
	var base []provcompress.Tuple
	for i, n := range nodes {
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(nodes) {
				base = append(base, provcompress.NewTuple("gossipPeer",
					provcompress.Str(string(n)), provcompress.Str(string(nodes[c]))))
			}
		}
		base = append(base, provcompress.NewTuple("gossipMember",
			provcompress.Str(string(n))))
	}
	if err := sys.LoadBase(base...); err != nil {
		log.Fatal(err)
	}

	// One rumor enters at the root and floods the tree.
	rumor := provcompress.NewTuple("rumor",
		provcompress.Str("n0"), provcompress.Str("blackout"), provcompress.Str("m0"))
	sys.Inject(rumor)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	outputs := sys.Outputs()
	fmt.Printf("rumor \"blackout\" delivered at %d of %d members\n", len(outputs), len(nodes))
	if len(outputs) != len(nodes) {
		log.Fatalf("expected delivery at every member")
	}

	// The delivery at a leaf carries the full dissemination path back to
	// the root (n6 heard it via n2).
	leaf := provcompress.NewTuple("deliver",
		provcompress.Str("n6"), provcompress.Str("blackout"), provcompress.Str("m0"))
	res, err := sys.Query(leaf, provcompress.HashTuple(rumor))
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Trees) != 1 {
		log.Fatalf("expected one tree for %s, got %d", leaf, len(res.Trees))
	}
	fmt.Printf("\nprovenance of %s:\n%s", leaf, res.Trees[0])
}
