// Dnsresolution runs the recursive DNS resolution DELP of Figure 19 over a
// synthetic nameserver hierarchy (Section 6.2): clients issue Zipfian
// requests for a fixed URL population, the provenance of every resolution
// is maintained under equivalence-based compression, and the example then
// queries how a chosen reply was derived — the delegation chain from the
// root nameserver down to the authoritative server.
//
// Run with:
//
//	go run ./examples/dnsresolution [-servers 40] [-urls 12] [-requests 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"provcompress"
	"provcompress/internal/metrics"
	"provcompress/internal/topo"
	"provcompress/internal/workload"
)

func main() {
	servers := flag.Int("servers", 40, "nameservers in the hierarchy")
	urls := flag.Int("urls", 12, "distinct resolvable URLs")
	requests := flag.Int("requests", 200, "DNS requests to issue")
	flag.Parse()

	tree := topo.GenDNSTree(topo.DNSTreeConfig{NumServers: *servers, MaxDepth: 12, Seed: 1})
	clients := tree.AttachClients(3)
	records := tree.PickURLs(*urls)
	fmt.Printf("nameserver hierarchy: %d servers, max depth %d, %d URLs, %d clients\n\n",
		*servers, tree.MaxObservedDepth(), len(records), len(clients))

	sys, err := provcompress.NewSystem(tree.Graph, provcompress.DNSProgram(),
		provcompress.SchemeAdvanced, provcompress.BuiltinFuncs())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadBase(tree.NameServerTuples(clients)...); err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadBase(topo.AddressRecordTuples(records)...); err != nil {
		log.Fatal(err)
	}

	names := make([]string, len(records))
	for i, u := range records {
		names[i] = u.URL
	}
	w := workload.DNSTraffic{
		URLs: names, Clients: clients,
		Rate: 500, Alpha: 0.9, Seed: 7, Count: *requests,
	}
	w.Schedule(sys.Runtime, 0)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	outs := sys.Outputs()
	fmt.Printf("resolved %d of %d requests\n", len(outs), *requests)
	fmt.Printf("provenance storage: %s total (%s per request)\n",
		metrics.HumanBytes(sys.TotalStorageBytes()),
		metrics.HumanBytes(sys.TotalStorageBytes()/int64(len(outs))))

	// Popularity histogram: how often was each URL requested?
	counts := make(map[string]int)
	for _, o := range outs {
		counts[o.Args[1].AsString()]++
	}
	fmt.Printf("\nZipfian popularity (top 5):\n")
	shown := 0
	for _, u := range names {
		if counts[u] > 0 && shown < 5 {
			fmt.Printf("  %-28s %4d requests\n", u, counts[u])
			shown++
		}
	}

	// Query the provenance of the last reply: the full delegation chain.
	out := outs[len(outs)-1]
	res, err := sys.Query(out, provcompress.ZeroID)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Trees) == 0 {
		log.Fatalf("no provenance for %s", out)
	}
	fmt.Printf("\nprovenance of %s\n(query latency %v, %d protocol hops, %d bytes moved):\n%s",
		out, res.Latency, res.Hops, res.Bytes, res.Trees[0])
}
