// Routechange demonstrates Section 5.5: updates to slow-changing tables
// at runtime. It reproduces the Figure 7 scenario — an administrator
// reroutes the n1-to-n3 traffic through a new node n4 — and shows how the
// sig broadcast resets the equivalence-key tables so that the rerouted
// class's provenance is concretely maintained again, while provenance of
// the old path remains queryable (provenance is monotone).
//
// Run with:
//
//	go run ./examples/routechange
package main

import (
	"fmt"
	"log"

	"provcompress"
	"provcompress/internal/topo"
)

func main() {
	// Figure 7 topology: n1 -- n2 -- n3 plus the alternative n1 -- n4 -- n3.
	g := topo.Fig7()
	sys, err := provcompress.NewSystem(g, provcompress.ForwardingProgram(),
		provcompress.SchemeAdvanced, nil)
	if err != nil {
		log.Fatal(err)
	}
	route := func(loc, dst, next string) provcompress.Tuple {
		return provcompress.NewTuple("route",
			provcompress.Str(loc), provcompress.Str(dst), provcompress.Str(next))
	}
	if err := sys.LoadBase(provcompress.Fig2Routes()...); err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadBase(route("n4", "n3", "n3")); err != nil {
		log.Fatal(err)
	}

	pkt := func(payload string) provcompress.Tuple {
		return provcompress.NewTuple("packet",
			provcompress.Str("n1"), provcompress.Str("n1"),
			provcompress.Str("n3"), provcompress.Str(payload))
	}

	// Phase 1: traffic takes n1 -> n2 -> n3.
	before := pkt("before-update")
	sys.Inject(before)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: packet forwarded over n1 -> n2 -> n3")

	// Phase 2: the administrator reroutes through n4. The deletion leaves
	// stored provenance intact; the insertion broadcasts sig, emptying
	// every node's equivalence-key table (htequi).
	msgsBefore := sys.Runtime.Net.TotalMessages()
	sys.DeleteSlow(route("n1", "n3", "n2"))
	sys.InsertSlow(route("n1", "n3", "n4"))
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: route updated; sig broadcast delivered to all %d nodes (%d control messages)\n",
		g.NumNodes(), sys.Runtime.Net.TotalMessages()-msgsBefore)

	// Phase 3: the next packet of the same equivalence class is maintained
	// afresh along the new path.
	after := pkt("after-update")
	sys.Inject(after)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 3: packet forwarded over n1 -> n4 -> n3, provenance re-maintained")

	show := func(ev provcompress.Tuple) {
		out := provcompress.NewTuple("recv",
			provcompress.Str("n3"), ev.Args[1], ev.Args[2], ev.Args[3])
		res, err := sys.Query(out, provcompress.HashTuple(ev))
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Trees) != 1 {
			log.Fatalf("expected one tree for %s, got %d", out, len(res.Trees))
		}
		fmt.Printf("\nprovenance of %s:\n%s", out, res.Trees[0])
	}

	// Both the pre-update and post-update trees are queryable; they show
	// the different paths the two packets took.
	show(before)
	show(after)
}
