// Crossprogram demonstrates the paper's Section 8 future-work direction,
// implemented here: compressing provenance across multiple programs that
// share execution rules. Packet forwarding (Figure 1) and a traffic-tap
// monitoring program are deployed together; every packet drives both, and
// the tap's provenance chains reuse the forwarding chains' rule-execution
// nodes, so adding the second program costs almost no extra provenance
// storage.
//
// Run with:
//
//	go run ./examples/crossprogram
package main

import (
	"fmt"
	"log"

	"provcompress"
	"provcompress/internal/metrics"
)

// tapSrc mirrors packets traversing a tapped node to a monitor.
const tapSrc = `
t1 mirror(@M, S, D, DT) :- packet(@L, S, D, DT), tap(@L, M).
`

func main() {
	tap, err := provcompress.ParseDELP(tapSrc)
	if err != nil {
		log.Fatal(err)
	}

	build := func(progs []*provcompress.Program) *provcompress.System {
		var sys *provcompress.System
		var err error
		if len(progs) == 1 {
			sys, err = provcompress.NewSystem(provcompress.Fig2(), progs[0],
				provcompress.SchemeAdvanced, nil)
		} else {
			sys, err = provcompress.NewMultiSystem(provcompress.Fig2(), progs,
				provcompress.SchemeAdvanced, nil)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadBase(provcompress.Fig2Routes()...); err != nil {
			log.Fatal(err)
		}
		if len(progs) > 1 {
			if err := sys.LoadBase(provcompress.NewTuple("tap",
				provcompress.Str("n2"), provcompress.Str("n3"))); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			sys.Inject(provcompress.NewTuple("packet",
				provcompress.Str("n1"), provcompress.Str("n1"),
				provcompress.Str("n3"), provcompress.Str(fmt.Sprintf("payload-%d", i))))
		}
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		return sys
	}

	solo := build([]*provcompress.Program{provcompress.ForwardingProgram()})
	both := build([]*provcompress.Program{provcompress.ForwardingProgram(), tap})

	fmt.Printf("forwarding alone:        %3d outputs, %s provenance\n",
		len(solo.Outputs()), metrics.HumanBytes(solo.TotalStorageBytes()))
	fmt.Printf("forwarding + tap:        %3d outputs, %s provenance\n",
		len(both.Outputs()), metrics.HumanBytes(both.TotalStorageBytes()))
	extra := both.TotalStorageBytes() - solo.TotalStorageBytes()
	fmt.Printf("cost of the tap program: %s total — its chains reuse the\n"+
		"forwarding rule-execution nodes, paying only one t1 node plus one\n"+
		"prov row per mirrored packet.\n\n", metrics.HumanBytes(extra))

	// Query a mirror tuple: the tree interleaves rules of both programs.
	ev := provcompress.NewTuple("packet",
		provcompress.Str("n1"), provcompress.Str("n1"),
		provcompress.Str("n3"), provcompress.Str("payload-7"))
	mirror := provcompress.NewTuple("mirror",
		provcompress.Str("n3"), provcompress.Str("n1"),
		provcompress.Str("n3"), provcompress.Str("payload-7"))
	res, err := both.Query(mirror, provcompress.HashTuple(ev))
	if err != nil || len(res.Trees) == 0 {
		log.Fatalf("query: %v (%d trees)", err, len(res.Trees))
	}
	fmt.Printf("provenance of %s\n(t1 is the tap program's rule; r1 is forwarding's):\n%s",
		mirror, res.Trees[0])
}
